"""Abstract syntax tree for the pipeline dialect.

Nodes are plain dataclasses.  Expression nodes gain a ``type`` attribute
during semantic analysis (:mod:`repro.lang.typecheck`); statement nodes are
left untouched so analyses can treat the tree as immutable apart from the
type annotations.

The tree deliberately mirrors the constructs of Section 3 of the paper:
``Foreach`` and ``PipelinedLoop`` are first-class statements rather than
being desugared, because every compiler phase (boundary selection, loop
fission, Gen/Cons analysis) keys off them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from .errors import SYNTHETIC, SourceSpan

# ---------------------------------------------------------------------------
# Type syntax (what the programmer wrote; resolved types live in types.py)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TypeNode:
    """Source-level type: a base name plus an array nesting depth.

    ``Rectdomain<k>`` is stored with ``name='Rectdomain'`` and ``dim=k``;
    the element class is given separately at the declaration site via the
    collection syntax ``Rectdomain<1> cubes = input.domain(Cube);`` or by
    annotation in app metadata.
    """

    name: str
    array_depth: int = 0
    dim: int = 0  # Rectdomain dimensionality; 0 for non-domains
    elem: Optional[str] = None  # element class for Rectdomain types
    span: SourceSpan = SYNTHETIC

    def __str__(self) -> str:
        base = self.name
        if self.name == "Rectdomain":
            base = f"Rectdomain<{self.dim}>"
            if self.elem:
                base += f"<{self.elem}>"
        return base + "[]" * self.array_depth


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Expr:
    span: SourceSpan = field(default=SYNTHETIC, kw_only=True)
    # Filled in by the type checker; object is repro.lang.types.Type.
    type: object = field(default=None, kw_only=True, compare=False)


@dataclass(slots=True)
class IntLit(Expr):
    value: int = 0


@dataclass(slots=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(slots=True)
class BoolLit(Expr):
    value: bool = False


@dataclass(slots=True)
class NullLit(Expr):
    pass


@dataclass(slots=True)
class StringLit(Expr):
    value: str = ""


@dataclass(slots=True)
class Name(Expr):
    ident: str = ""
    # Filled by the resolver: the VarSymbol / ParamSymbol this name binds to.
    symbol: object = field(default=None, kw_only=True, compare=False)


@dataclass(slots=True)
class FieldAccess(Expr):
    obj: Expr = None  # type: ignore[assignment]
    field_name: str = ""


@dataclass(slots=True)
class Index(Expr):
    obj: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Call(Expr):
    """Free-function call — resolves to a dialect method of the enclosing
    class or to a registered intrinsic."""

    func: str = ""
    args: list[Expr] = field(default_factory=list)
    # Resolution result: 'method' | 'intrinsic'; target object set by checker.
    target_kind: str = field(default="", kw_only=True, compare=False)
    target: object = field(default=None, kw_only=True, compare=False)


@dataclass(slots=True)
class MethodCall(Expr):
    """``obj.method(args)`` — used both for ordinary methods and for
    reduction updates (``zbuf.accum(poly)``)."""

    obj: Expr = None  # type: ignore[assignment]
    method: str = ""
    args: list[Expr] = field(default_factory=list)
    target_kind: str = field(default="", kw_only=True, compare=False)
    target: object = field(default=None, kw_only=True, compare=False)


@dataclass(slots=True)
class New(Expr):
    class_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(slots=True)
class NewArray(Expr):
    elem_type: TypeNode = None  # type: ignore[assignment]
    length: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Ternary(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt:
    span: SourceSpan = field(default=SYNTHETIC, kw_only=True)


@dataclass(slots=True)
class VarDecl(Stmt):
    decl_type: TypeNode = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expr] = None
    runtime_define: bool = False
    symbol: object = field(default=None, kw_only=True, compare=False)


@dataclass(slots=True)
class Assign(Stmt):
    """``lvalue op= expr``; ``op`` is '' for plain assignment."""

    target: Expr = None  # type: ignore[assignment]
    op: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    other: Optional[Block] = None


@dataclass(slots=True)
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass(slots=True)
class For(Stmt):
    """C-style counted loop. Analyses require the standard shape
    ``for (int i = lo; i < hi; i += step)`` to derive rectilinear sections;
    other shapes are treated conservatively."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    update: Optional[Stmt] = None
    body: Block = None  # type: ignore[assignment]


@dataclass(slots=True)
class Foreach(Stmt):
    """Order-independent iteration over a Rectdomain collection."""

    var: str = ""
    domain: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]
    var_symbol: object = field(default=None, kw_only=True, compare=False)
    # Set by loop fission when this loop was split out of a larger foreach.
    fission_of: Optional[str] = field(default=None, kw_only=True, compare=False)


@dataclass(slots=True)
class PipelinedLoop(Stmt):
    """Loop over packets; the unit of pipelined execution (Section 3)."""

    var: str = ""
    domain: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]
    var_symbol: object = field(default=None, kw_only=True, compare=False)


@dataclass(slots=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Param:
    decl_type: TypeNode
    name: str
    span: SourceSpan = SYNTHETIC
    symbol: object = field(default=None, compare=False)


@dataclass(slots=True)
class FieldDecl:
    decl_type: TypeNode
    name: str
    span: SourceSpan = SYNTHETIC


@dataclass(slots=True)
class MethodDecl:
    ret_type: TypeNode
    name: str
    params: list[Param]
    body: Block
    span: SourceSpan = SYNTHETIC
    owner: Optional[str] = None  # enclosing class name, set by parser


@dataclass(slots=True)
class NativeDecl:
    """``native double[] extract(Cube c);`` — declares an intrinsic whose
    body lives in Python.  The Python side registers the implementation and
    the read/write/cost summary under the same name."""

    ret_type: TypeNode
    name: str
    params: list[Param]
    span: SourceSpan = SYNTHETIC


@dataclass(slots=True)
class ClassDecl:
    name: str
    implements: list[str]
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    span: SourceSpan = SYNTHETIC

    @property
    def is_reduction(self) -> bool:
        return "Reducinterface" in self.implements


@dataclass(slots=True)
class Program:
    classes: list[ClassDecl]
    natives: list[NativeDecl]
    span: SourceSpan = SYNTHETIC

    def find_class(self, name: str) -> Optional[ClassDecl]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def find_method(self, name: str) -> Optional[MethodDecl]:
        for cls in self.classes:
            for meth in cls.methods:
                if meth.name == name:
                    return meth
        return None


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------

_EXPR_CHILD_FIELDS = {
    FieldAccess: ("obj",),
    Index: ("obj", "index"),
    Unary: ("operand",),
    Binary: ("left", "right"),
    Ternary: ("cond", "then", "other"),
    NewArray: ("length",),
}


def child_exprs(node: Union[Expr, Stmt]) -> Iterator[Expr]:
    """Yield the direct sub-expressions of an expression or statement."""
    if isinstance(node, Call):
        yield from node.args
    elif isinstance(node, MethodCall):
        yield node.obj
        yield from node.args
    elif isinstance(node, New):
        yield from node.args
    elif type(node) in _EXPR_CHILD_FIELDS:
        for name in _EXPR_CHILD_FIELDS[type(node)]:
            child = getattr(node, name)
            if child is not None:
                yield child
    elif isinstance(node, VarDecl):
        if node.init is not None:
            yield node.init
    elif isinstance(node, Assign):
        yield node.target
        yield node.value
    elif isinstance(node, ExprStmt):
        yield node.expr
    elif isinstance(node, If):
        yield node.cond
    elif isinstance(node, While):
        yield node.cond
    elif isinstance(node, For):
        if node.cond is not None:
            yield node.cond
    elif isinstance(node, (Foreach, PipelinedLoop)):
        yield node.domain
    elif isinstance(node, Return):
        if node.value is not None:
            yield node.value


def child_stmts(stmt: Stmt) -> Iterator[Stmt]:
    """Yield the direct sub-statements of a statement."""
    if isinstance(stmt, Block):
        yield from stmt.body
    elif isinstance(stmt, If):
        yield stmt.then
        if stmt.other is not None:
            yield stmt.other
    elif isinstance(stmt, (While, Foreach, PipelinedLoop)):
        yield stmt.body
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield stmt.init
        if stmt.update is not None:
            yield stmt.update
        yield stmt.body


def walk_exprs(root: Union[Expr, Stmt]) -> Iterator[Expr]:
    """Depth-first pre-order walk over every expression under ``root``."""
    stack: list[Union[Expr, Stmt]] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Expr):
            yield node
        stack.extend(child_exprs(node))
        if isinstance(node, Stmt):
            stack.extend(child_stmts(node))


def walk_stmts(root: Stmt) -> Iterator[Stmt]:
    """Depth-first pre-order walk over every statement under ``root``
    (including ``root`` itself)."""
    stack: list[Stmt] = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(child_stmts(node))


def find_pipelined_loops(program: Program) -> list[tuple[MethodDecl, PipelinedLoop]]:
    """All (method, PipelinedLoop) pairs in the program, in source order."""
    found: list[tuple[MethodDecl, PipelinedLoop]] = []
    for cls in program.classes:
        for meth in cls.methods:
            for stmt in walk_stmts(meth.body):
                if isinstance(stmt, PipelinedLoop):
                    found.append((meth, stmt))
    found.sort(key=lambda pair: (pair[1].span.line, pair[1].span.col))
    return found
