"""Token definitions for the pipeline dialect.

The dialect is a small Java-like language (the paper bases its prototype on
the Titanium infrastructure) extended with the four constructs of Section 3:

* ``Rectdomain<k>`` collection types,
* ``foreach`` order-independent loops,
* ``Reducinterface`` (a marker interface naming reduction classes),
* ``PipelinedLoop`` packet loops, and the ``runtime_define`` modifier for
  values (such as the packet count) bound at run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceSpan


class TokKind(enum.Enum):
    # literals / identifiers
    INT = "int-literal"
    FLOAT = "float-literal"
    STRING = "string-literal"
    IDENT = "identifier"
    # punctuation
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    # operators
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    QUESTION = "?"
    COLON = ":"
    # keywords (value is the exact source spelling)
    KW_CLASS = "class"
    KW_INTERFACE = "interface"
    KW_IMPLEMENTS = "implements"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_FOREACH = "foreach"
    KW_PIPELINED = "PipelinedLoop"
    KW_IN = "in"
    KW_RETURN = "return"
    KW_NEW = "new"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_NULL = "null"
    KW_VOID = "void"
    KW_INT = "int"
    KW_LONG = "long"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_BOOLEAN = "boolean"
    KW_BYTE = "byte"
    KW_RECTDOMAIN = "Rectdomain"
    KW_RUNTIME_DEFINE = "runtime_define"
    KW_NATIVE = "native"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    EOF = "<eof>"


#: Maps keyword spelling -> kind, built from the enum above.
KEYWORDS: dict[str, TokKind] = {
    kind.value: kind for kind in TokKind if kind.name.startswith("KW_")
}

#: Primitive-type keywords (used by the parser to predict declarations).
PRIMITIVE_KINDS = frozenset(
    {
        TokKind.KW_VOID,
        TokKind.KW_INT,
        TokKind.KW_LONG,
        TokKind.KW_FLOAT,
        TokKind.KW_DOUBLE,
        TokKind.KW_BOOLEAN,
        TokKind.KW_BYTE,
    }
)

#: Compound-assignment token -> underlying binary operator spelling.
AUG_ASSIGN_OPS: dict[TokKind, str] = {
    TokKind.PLUS_ASSIGN: "+",
    TokKind.MINUS_ASSIGN: "-",
    TokKind.STAR_ASSIGN: "*",
    TokKind.SLASH_ASSIGN: "/",
}


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokKind
    text: str
    span: SourceSpan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}@{self.span})"
