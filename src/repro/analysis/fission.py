"""Loop fission for foreach loops (paper §4.1).

    "If there are candidate filter boundaries within a foreach loop, we
    perform loop fission and create separate foreach loops. This ensures
    that there are no candidate boundaries inside a foreach loop."

A ``foreach`` body is split into a sequence of **element stages**.  Each
stage holds straight-line per-element statements; stage boundaries fall

* around statements that contain a function/method call (the paper's
  "start and end of a function call within a foreach loop"), and
* at a trailing ``if`` with no else-branch that wraps the remainder of the
  body — the conditional becomes a **guard**: elements failing it are
  dropped from the stream, which is precisely how the compiler-decomposed
  isosurface versions push the cube-rejection test to the data nodes (§6.3).

An ``if`` that has an else-branch, or that is followed by more statements,
cannot filter the stream; it stays inside a single stage as an opaque
statement.  Values defined in one stage and read in a later one become
fields of the inter-stage record (scalar expansion is implicit in the
record-stream model of §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..lang.types import VarSymbol


def _contains_call(stmt: ast.Stmt) -> bool:
    return any(
        isinstance(e, (ast.Call, ast.MethodCall)) for e in ast.walk_exprs(stmt)
    )


@dataclass(slots=True)
class ElementStage:
    """One fission fragment of a foreach body.

    ``guard`` (if present) is evaluated first; elements failing it produce
    no output record and no further work in this or later stages.
    ``guard_param`` names the workload-profile selectivity of the guard.
    """

    stmts: list[ast.Stmt] = field(default_factory=list)
    guard: ast.Expr | None = None
    guard_param: str | None = None

    def is_empty(self) -> bool:
        return not self.stmts and self.guard is None


@dataclass(slots=True)
class FissionedForeach:
    """A foreach split into stages, all iterating the same element stream."""

    loop: ast.Foreach
    elem_var: VarSymbol
    stages: list[ElementStage]
    #: symbols declared per-element anywhere in the original body
    local_roots: set[VarSymbol] = field(default_factory=set)


def _split_straightline(
    stmts: list[ast.Stmt], stages: list[ElementStage], guard_counter: list[int]
) -> None:
    """Append stages for a statement sequence (recursive over guard ifs)."""
    current = ElementStage()

    def flush() -> None:
        nonlocal current
        if not current.is_empty():
            stages.append(current)
        current = ElementStage()

    for i, stmt in enumerate(stmts):
        is_guard_if = (
            isinstance(stmt, ast.If)
            and stmt.other is None
            and i == len(stmts) - 1
        )
        if is_guard_if:
            flush()
            assert isinstance(stmt, ast.If)
            idx = guard_counter[0]
            guard_counter[0] += 1
            guard_stage = ElementStage(
                guard=stmt.cond, guard_param=f"sel.g{idx}"
            )
            stages.append(guard_stage)
            _split_straightline(stmt.then.body, stages, guard_counter)
        elif _contains_call(stmt):
            # call boundaries: the statement is its own stage
            flush()
            stages.append(ElementStage(stmts=[stmt]))
        else:
            current.stmts.append(stmt)
    flush()


def fission_foreach(loop: ast.Foreach) -> FissionedForeach:
    """Split one foreach into element stages.

    The loop variable symbol must already be resolved (run the typechecker
    first).  The returned stages preserve source order; concatenating their
    statements under the original guards reproduces the original body.
    """
    assert loop.var_symbol is not None, "typecheck before fission"
    stages: list[ElementStage] = []
    _split_straightline(list(loop.body.body), stages, [0])
    if not stages:
        stages = [ElementStage()]
    local_roots: set[VarSymbol] = set()
    for stmt in ast.walk_stmts(loop.body):
        if isinstance(stmt, ast.VarDecl) and stmt.symbol is not None:
            local_roots.add(stmt.symbol)  # type: ignore[arg-type]
    return FissionedForeach(
        loop=loop,
        elem_var=loop.var_symbol,  # type: ignore[arg-type]
        stages=stages,
        local_roots=local_roots,
    )


def rebuild_foreach_ast(fissioned: FissionedForeach) -> list[ast.Foreach]:
    """Materialize the fission as a list of foreach AST nodes (one per
    stage) for display and for tests that check semantic preservation.

    Guards are re-applied: a stage after a guard is wrapped in the
    conjunction of all guards seen so far, so each rebuilt loop is an
    independently correct traversal of the *original* domain.
    """
    loops: list[ast.Foreach] = []
    active_guards: list[ast.Expr] = []
    for stage in fissioned.stages:
        if stage.guard is not None:
            active_guards = active_guards + [stage.guard]
            continue
        body: list[ast.Stmt] = list(stage.stmts)
        for guard in reversed(active_guards):
            body = [
                ast.If(
                    cond=guard,
                    then=ast.Block(body=body, span=fissioned.loop.span),
                    other=None,
                    span=fissioned.loop.span,
                )
            ]
        loops.append(
            ast.Foreach(
                var=fissioned.loop.var,
                domain=fissioned.loop.domain,
                body=ast.Block(body=body, span=fissioned.loop.span),
                span=fissioned.loop.span,
                var_symbol=fissioned.elem_var,
                fission_of=fissioned.loop.var,
            )
        )
    return loops
