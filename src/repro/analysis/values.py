"""Value representation for the communication analysis (paper §4.2).

The paper stores ``Gen``/``Cons``/``ReqComm`` sets as *values* — scalars,
object fields, and **rectilinear sections** of arrays whose bounds "may only
be available symbolically".  We realize that as:

* :class:`SymExpr` — a polynomial over named workload parameters
  (``packet_size``, ``selectivity_accept`` ...) with float coefficients;
  bounds and sizes are SymExprs evaluated against a
  :class:`~repro.analysis.workload.WorkloadProfile` at decomposition time.
* :class:`Section` — a rectilinear region: per-dimension half-open interval
  with SymExpr bounds, or the distinguished ``FULL`` / ``UNKNOWN`` extents.
* :class:`AccessPath` — a root :class:`~repro.lang.types.VarSymbol` plus a
  chain of selectors (field access, element/section selection).
* :class:`PathSet` — the set algebra used by the analysis equations,
  with the must/may asymmetry of Figure 2: removal (``- Gen``) only strikes
  paths *definitely covered*, insertion (``+ Cons``) keeps anything that
  *may* be needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Union

from ..lang.types import Type, VarSymbol

# ---------------------------------------------------------------------------
# Symbolic polynomials
# ---------------------------------------------------------------------------

_Monomial = tuple[str, ...]  # sorted tuple of parameter names (with repeats)


class SymExpr:
    """Polynomial over workload parameters with float coefficients.

    Immutable.  Construct with :meth:`const`, :meth:`var`, or arithmetic on
    existing expressions; ints/floats coerce automatically.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[_Monomial, float] | None = None) -> None:
        cleaned = {
            mono: coeff
            for mono, coeff in (terms or {}).items()
            if coeff != 0.0
        }
        self._terms: dict[_Monomial, float] = cleaned

    # -- constructors -------------------------------------------------------
    @staticmethod
    def const(value: float) -> "SymExpr":
        return SymExpr({(): float(value)})

    @staticmethod
    def var(name: str) -> "SymExpr":
        return SymExpr({(name,): 1.0})

    @staticmethod
    def coerce(value: "SymExpr | int | float") -> "SymExpr":
        if isinstance(value, SymExpr):
            return value
        return SymExpr.const(float(value))

    # -- inspection ----------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return all(mono == () for mono in self._terms)

    @property
    def constant_value(self) -> float:
        if not self.is_constant:
            raise ValueError(f"{self} is not constant")
        return self._terms.get((), 0.0)

    def parameters(self) -> set[str]:
        return {name for mono in self._terms for name in mono}

    def evaluate(self, profile: Mapping[str, float]) -> float:
        """Numeric value under ``profile``; missing parameters default to 1
        (a deliberate bias: unknown scale factors neither grow nor vanish)."""
        total = 0.0
        for mono, coeff in self._terms.items():
            prod = coeff
            for name in mono:
                prod *= profile.get(name, 1.0)
            total += prod
        return total

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: "SymExpr | int | float") -> "SymExpr":
        other = SymExpr.coerce(other)
        terms = dict(self._terms)
        for mono, coeff in other._terms.items():
            terms[mono] = terms.get(mono, 0.0) + coeff
        return SymExpr(terms)

    __radd__ = __add__

    def __neg__(self) -> "SymExpr":
        return SymExpr({mono: -coeff for mono, coeff in self._terms.items()})

    def __sub__(self, other: "SymExpr | int | float") -> "SymExpr":
        return self + (-SymExpr.coerce(other))

    def __rsub__(self, other: "SymExpr | int | float") -> "SymExpr":
        return SymExpr.coerce(other) + (-self)

    def __mul__(self, other: "SymExpr | int | float") -> "SymExpr":
        other = SymExpr.coerce(other)
        terms: dict[_Monomial, float] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                mono = tuple(sorted(m1 + m2))
                terms[mono] = terms.get(mono, 0.0) + c1 * c2
        return SymExpr(terms)

    __rmul__ = __mul__

    def substitute(self, mapping: Mapping[str, "SymExpr"]) -> "SymExpr":
        """Replace parameters by expressions (used by interprocedural
        renaming of formals to actuals)."""
        if not any(name in mapping for mono in self._terms for name in mono):
            return self
        result = SymExpr()
        for mono, coeff in self._terms.items():
            term = SymExpr.const(coeff)
            for name in mono:
                term = term * mapping.get(name, SymExpr.var(name))
            result = result + term
        return result

    # -- comparison (decidable only when the difference is constant) ---------
    def definitely_le(self, other: "SymExpr | int | float") -> bool:
        diff = SymExpr.coerce(other) - self
        return diff.is_constant and diff.constant_value >= 0.0

    def definitely_eq(self, other: "SymExpr | int | float") -> bool:
        diff = SymExpr.coerce(other) - self
        return diff.is_constant and diff.constant_value == 0.0

    # -- dunder ----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = SymExpr.const(other)
        if not isinstance(other, SymExpr):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in sorted(self._terms.items()):
            name = "*".join(mono) if mono else ""
            if name and coeff == 1.0:
                parts.append(name)
            elif name:
                parts.append(f"{coeff:g}*{name}")
            else:
                parts.append(f"{coeff:g}")
        return " + ".join(parts)


ZERO = SymExpr.const(0)
ONE = SymExpr.const(1)


# ---------------------------------------------------------------------------
# Rectilinear sections
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """Half-open [lo, hi) with symbolic bounds."""

    lo: SymExpr
    hi: SymExpr

    def size(self) -> SymExpr:
        return self.hi - self.lo

    def covers(self, other: "Interval") -> bool:
        """Definitely contains ``other``?"""
        return self.lo.definitely_le(other.lo) and other.hi.definitely_le(self.hi)

    def same(self, other: "Interval") -> bool:
        return self.lo.definitely_eq(other.lo) and self.hi.definitely_eq(other.hi)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest decidable enclosing interval; falls back to self∪other
        bounds only when comparable, else returns an unknown-sized hull
        marked by non-comparable bounds kept from self."""
        lo = self.lo if self.lo.definitely_le(other.lo) else other.lo
        hi = self.hi if other.hi.definitely_le(self.hi) else other.hi
        return Interval(lo, hi)

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi})"


class Section:
    """A rectilinear selection over an array/collection.

    Three shapes: ``FULL`` (every element), ``UNKNOWN`` (some elements —
    conservative), or a tuple of per-dimension :class:`Interval` bounds.
    """

    __slots__ = ("kind", "intervals")

    def __init__(self, kind: str, intervals: tuple[Interval, ...] = ()) -> None:
        assert kind in ("full", "unknown", "rect")
        self.kind = kind
        self.intervals = intervals

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def full() -> "Section":
        return _FULL

    @staticmethod
    def unknown() -> "Section":
        return _UNKNOWN

    @staticmethod
    def rect(*intervals: Interval) -> "Section":
        return Section("rect", tuple(intervals))

    @staticmethod
    def point(index: SymExpr) -> "Section":
        return Section("rect", (Interval(index, index + 1),))

    # -- relations -------------------------------------------------------------
    def covers(self, other: "Section") -> bool:
        """Must-containment: every element of ``other`` is in ``self``."""
        if self.kind == "full":
            return True
        if self.kind == "unknown" or other.kind in ("full", "unknown"):
            return False
        if len(self.intervals) != len(other.intervals):
            return False
        return all(a.covers(b) for a, b in zip(self.intervals, other.intervals))

    def same(self, other: "Section") -> bool:
        if self.kind != other.kind:
            return False
        if self.kind in ("full", "unknown"):
            return True
        if len(self.intervals) != len(other.intervals):
            return False
        return all(a.same(b) for a, b in zip(self.intervals, other.intervals))

    def hull(self, other: "Section") -> "Section":
        """May-union: smallest representable section containing both."""
        if self.kind == "full" or other.kind == "full":
            return _FULL
        if self.kind == "unknown" or other.kind == "unknown":
            return _UNKNOWN
        if len(self.intervals) != len(other.intervals):
            return _UNKNOWN
        return Section(
            "rect",
            tuple(a.hull(b) for a, b in zip(self.intervals, other.intervals)),
        )

    def count(self) -> SymExpr:
        """Number of selected elements (symbolic).  ``FULL``/``UNKNOWN``
        evaluate against the owning collection's extent parameter — callers
        multiply by it; here they count as 1 'whole-collection' unit."""
        if self.kind in ("full", "unknown"):
            return ONE
        total = ONE
        for iv in self.intervals:
            total = total * iv.size()
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Section):
            return NotImplemented
        return self.kind == other.kind and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash((self.kind, self.intervals))

    def __repr__(self) -> str:
        if self.kind == "full":
            return "[*]"
        if self.kind == "unknown":
            return "[?]"
        return "".join(repr(iv) for iv in self.intervals)


_FULL = Section("full")
_UNKNOWN = Section("unknown")


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldSel:
    name: str

    def __repr__(self) -> str:
        return f".{self.name}"


@dataclass(frozen=True)
class ElemSel:
    section: Section

    def __repr__(self) -> str:
        return repr(self.section)


Selector = Union[FieldSel, ElemSel]


class AccessPath:
    """A value location: root variable + selector chain.

    Roots are compared by *symbol identity* so that shadowed names stay
    distinct.  Examples: ``c``, ``c.corners[*]``, ``zbuf.depth[0, n)``.
    """

    __slots__ = ("root", "selectors", "type")

    def __init__(
        self,
        root: VarSymbol,
        selectors: tuple[Selector, ...] = (),
        type: Optional[Type] = None,
    ) -> None:
        self.root = root
        self.selectors = selectors
        self.type = type

    # -- derivation ------------------------------------------------------------
    def field(self, name: str, type: Optional[Type] = None) -> "AccessPath":
        return AccessPath(self.root, self.selectors + (FieldSel(name),), type)

    def elem(self, section: Section, type: Optional[Type] = None) -> "AccessPath":
        return AccessPath(self.root, self.selectors + (ElemSel(section),), type)

    def with_section(self, section: Section) -> "AccessPath":
        """Replace the *last* selector's section (used when loop analysis
        widens an index function into a rectilinear section)."""
        assert self.selectors and isinstance(self.selectors[-1], ElemSel)
        return AccessPath(
            self.root, self.selectors[:-1] + (ElemSel(section),), self.type
        )

    def widen_sections(self, section: Section) -> "AccessPath":
        """Replace every point/unknown element selector with ``section`` —
        the Figure 2 step that converts loop-index accesses into sections."""
        new = tuple(
            ElemSel(section) if isinstance(sel, ElemSel) else sel
            for sel in self.selectors
        )
        return AccessPath(self.root, new, self.type)

    # -- relations ---------------------------------------------------------------
    def same_shape(self, other: "AccessPath") -> bool:
        """Same root and selector structure, ignoring section bounds."""
        if self.root is not other.root or len(self.selectors) != len(other.selectors):
            return False
        for a, b in zip(self.selectors, other.selectors):
            if type(a) is not type(b):
                return False
            if isinstance(a, FieldSel) and a.name != b.name:  # type: ignore[union-attr]
                return False
        return True

    def covers(self, other: "AccessPath") -> bool:
        """Must-containment: writing ``self`` definitely defines ``other``.

        True when the roots match, ``self``'s selector chain is a prefix of
        (or equal to) ``other``'s, and every element selector of ``self``
        must-covers the corresponding selector of ``other``.
        """
        if self.root is not other.root:
            return False
        if len(self.selectors) > len(other.selectors):
            return False
        for a, b in zip(self.selectors, other.selectors):
            if isinstance(a, FieldSel):
                if not isinstance(b, FieldSel) or a.name != b.name:
                    return False
            else:
                if not isinstance(b, ElemSel) or not a.section.covers(b.section):
                    return False
        return True

    def overlaps(self, other: "AccessPath") -> bool:
        """May the two paths denote a common location?  Conservative: any
        shape match that cannot be disproven overlaps."""
        a, b = (self, other) if len(self.selectors) <= len(other.selectors) else (other, self)
        if a.root is not b.root:
            return False
        for sa, sb in zip(a.selectors, b.selectors):
            if isinstance(sa, FieldSel):
                if not isinstance(sb, FieldSel) or sa.name != sb.name:
                    return False
            else:
                if not isinstance(sb, ElemSel):
                    return False
                # disjointness of sections is only decidable for rects with
                # comparable bounds; we do not attempt it -> assume overlap
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessPath):
            return NotImplemented
        if self.root is not other.root or len(self.selectors) != len(other.selectors):
            return False
        for a, b in zip(self.selectors, other.selectors):
            if isinstance(a, FieldSel):
                if not isinstance(b, FieldSel) or a.name != b.name:
                    return False
            else:
                if not isinstance(b, ElemSel) or not a.section.same(b.section):
                    return False
        return True

    def __hash__(self) -> int:
        shape = tuple(
            sel.name if isinstance(sel, FieldSel) else "[]" for sel in self.selectors
        )
        return hash((id(self.root), shape))

    def __repr__(self) -> str:
        return self.root.name + "".join(repr(sel) for sel in self.selectors)


# ---------------------------------------------------------------------------
# Path sets
# ---------------------------------------------------------------------------


class PathSet:
    """Set of access paths with the Figure 2 must/may algebra.

    * :meth:`add` (may): inserts, merging same-shape paths by section hull.
    * :meth:`remove_covered` (must): removes paths definitely covered by a
      given definition — the ``- Gen(b)`` operation.
    * :meth:`union`, :meth:`difference` build new sets without mutation.
    """

    __slots__ = ("_paths",)

    def __init__(self, paths: Iterable[AccessPath] = ()) -> None:
        self._paths: list[AccessPath] = []
        for p in paths:
            self.add(p)

    def add(self, path: AccessPath) -> None:
        for i, existing in enumerate(self._paths):
            if existing.same_shape(path):
                merged = _merge_sections(existing, path)
                self._paths[i] = merged
                return
        self._paths.append(path)

    def remove_covered(self, definition: AccessPath) -> None:
        self._paths = [p for p in self._paths if not definition.covers(p)]

    def contains(self, path: AccessPath) -> bool:
        """Is ``path`` definitely represented (covered) by this set?"""
        return any(p.covers(path) for p in self._paths)

    def may_contain(self, path: AccessPath) -> bool:
        return any(p.overlaps(path) for p in self._paths)

    def union(self, other: "PathSet") -> "PathSet":
        out = PathSet(self._paths)
        for p in other:
            out.add(p)
        return out

    def difference_must(self, gens: "PathSet") -> "PathSet":
        """``self − gens`` with must semantics: strike only what a gen path
        definitely covers."""
        out = PathSet()
        for p in self._paths:
            if not any(g.covers(p) for g in gens):
                out.add(p)
        return out

    def roots(self) -> set[VarSymbol]:
        return {p.root for p in self._paths}

    def by_root(self, root: VarSymbol) -> list[AccessPath]:
        return [p for p in self._paths if p.root is root]

    def copy(self) -> "PathSet":
        out = PathSet()
        out._paths = list(self._paths)
        return out

    def __iter__(self) -> Iterator[AccessPath]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __bool__(self) -> bool:
        return bool(self._paths)

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(p) for p in self._paths))
        return "{" + inner + "}"


def _merge_sections(a: AccessPath, b: AccessPath) -> AccessPath:
    """Merge two same-shape paths by hulling every element selector."""
    selectors: list[Selector] = []
    for sa, sb in zip(a.selectors, b.selectors):
        if isinstance(sa, ElemSel):
            selectors.append(ElemSel(sa.section.hull(sb.section)))  # type: ignore[union-attr]
        else:
            selectors.append(sa)
    return AccessPath(a.root, tuple(selectors), a.type or b.type)
