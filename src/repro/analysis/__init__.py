"""Compiler analyses (paper §4): candidate filter boundaries, loop fission,
the boundary graph, one-pass Gen/Cons, required communication (ReqComm),
interprocedural summaries, operation counting, and workload profiles."""

from .alias import AliasOracle, ConservativeOracle
from .boundaries import AtomicFilter, Boundary, FilterChain, build_filter_chain
from .boundary_graph import (
    BoundaryEdge,
    BoundaryNode,
    CandidateBoundaryGraph,
    chain_from_filter_chain,
)
from .fission import ElementStage, FissionedForeach, fission_foreach, rebuild_foreach_ast
from .gencons import GenConsAnalyzer, SegmentFacts, symbol_tag
from .opcount import OpCounter
from .reqcomm import CommAnalysis, VolumeModel, analyze_communication, live_out_paths
from .values import (
    AccessPath,
    ElemSel,
    FieldSel,
    Interval,
    PathSet,
    Section,
    SymExpr,
)
from .workload import WorkloadProfile

__all__ = [
    "AccessPath",
    "AliasOracle",
    "AtomicFilter",
    "Boundary",
    "BoundaryEdge",
    "BoundaryNode",
    "CandidateBoundaryGraph",
    "CommAnalysis",
    "ConservativeOracle",
    "ElemSel",
    "ElementStage",
    "FieldSel",
    "FilterChain",
    "FissionedForeach",
    "GenConsAnalyzer",
    "Interval",
    "OpCounter",
    "PathSet",
    "Section",
    "SegmentFacts",
    "SymExpr",
    "VolumeModel",
    "WorkloadProfile",
    "analyze_communication",
    "build_filter_chain",
    "chain_from_filter_chain",
    "fission_foreach",
    "live_out_paths",
    "rebuild_foreach_ast",
    "symbol_tag",
]
