"""Operation counting for the cost model (paper §4.3).

    "Computation time is determined using the number of floating point and
    integer operations in the code and the processing power available at
    each computing unit."

:class:`OpCounter` walks an atomic filter's statements and tallies
floating-point ops, integer ops, and branches into an
:class:`~repro.lang.intrinsics.OpCount`:

* arithmetic on ``float``/``double`` operands counts as a flop, on integral
  operands as an iop; comparisons and logical connectives count as branches;
* every array index contributes an address iop;
* intrinsic calls contribute their declared cost model;
* dialect method calls are counted by recursing into the callee body
  (bounded depth);
* counted ``for`` loops multiply their body by the trip count evaluated
  under the workload profile; unrecognized loops use the
  ``loop.default_trip`` profile parameter;
* an *element* atom's per-record count is scaled by its stream cardinality
  (packet size times upstream guard selectivities); *packet* atoms count
  once per packet.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.intrinsics import OpCount
from ..lang.typecheck import CheckedProgram, MethodSig, NativeSig
from ..lang.types import PrimType
from .boundaries import AtomicFilter
from .gencons import GenConsAnalyzer
from .workload import WorkloadProfile

_FLOAT_NAMES = ("float", "double")


def _is_float(t: object) -> bool:
    return isinstance(t, PrimType) and t.name in _FLOAT_NAMES


class OpCounter:
    """Counts weighted operations per packet for atomic filters.

    ``method_costs`` maps ``'Class.method'`` to a cost model (profile ->
    OpCount), overriding body counting — used for reduction-class methods
    whose dialect bodies are stubs backed by native runtime classes (the
    same summary mechanism intrinsics use)."""

    def __init__(
        self,
        checked: CheckedProgram,
        max_call_depth: int = 12,
        method_costs: dict[str, object] | None = None,
    ) -> None:
        self.checked = checked
        self.max_call_depth = max_call_depth
        self.method_costs = method_costs or {}
        self._stack: list[str] = []
        # reuse the counted-loop recognizer from the Gen/Cons engine
        self._gc = GenConsAnalyzer(checked)

    # ------------------------------------------------------------------ api
    def atom_ops(
        self, atom: AtomicFilter, profile: WorkloadProfile
    ) -> OpCount:
        """Total operations this atom performs per packet."""
        per_visit = OpCount()
        for stmt in atom.stmts:
            per_visit = per_visit + self.stmt_ops(stmt, profile)
        if atom.guard is not None:
            per_visit = per_visit + self.expr_ops(atom.guard, profile)
            per_visit = per_visit + OpCount(branches=1)
        if atom.kind == "element":
            card = profile.packet_size
            for param in atom.applied_guards:
                card *= profile.get(param)
            return per_visit.scaled(card)
        return per_visit

    # ----------------------------------------------------------- statements
    def stmt_ops(self, stmt: ast.Stmt, profile: WorkloadProfile) -> OpCount:
        if isinstance(stmt, ast.Block):
            total = OpCount()
            for inner in stmt.body:
                total = total + self.stmt_ops(inner, profile)
            return total
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                return self.expr_ops(stmt.init, profile)
            return OpCount()
        if isinstance(stmt, ast.Assign):
            ops = self.expr_ops(stmt.value, profile) + self._lvalue_ops(
                stmt.target, profile
            )
            if stmt.op:  # compound assignment performs the binary op
                if _is_float(stmt.target.type):
                    ops = ops + OpCount(flops=1)
                else:
                    ops = ops + OpCount(iops=1)
            return ops
        if isinstance(stmt, ast.ExprStmt):
            return self.expr_ops(stmt.expr, profile)
        if isinstance(stmt, ast.If):
            ops = self.expr_ops(stmt.cond, profile) + OpCount(branches=1)
            then_ops = self.stmt_ops(stmt.then, profile)
            else_ops = (
                self.stmt_ops(stmt.other, profile)
                if stmt.other is not None
                else OpCount()
            )
            # expected cost: average of the two arms (no branch profile)
            avg = OpCount(
                flops=(then_ops.flops + else_ops.flops) / 2,
                iops=(then_ops.iops + else_ops.iops) / 2,
                branches=(then_ops.branches + else_ops.branches) / 2,
            )
            return ops + avg
        if isinstance(stmt, ast.For):
            return self._for_ops(stmt, profile)
        if isinstance(stmt, ast.While):
            trips = profile.get("loop.default_trip")
            body = self.stmt_ops(stmt.body, profile)
            cond = self.expr_ops(stmt.cond, profile) + OpCount(branches=1)
            return (body + cond).scaled(trips)
        if isinstance(stmt, ast.Foreach):
            trips = profile.packet_size
            body = self.stmt_ops(stmt.body, profile)
            return body.scaled(trips) + OpCount(branches=trips)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                return self.expr_ops(stmt.value, profile)
            return OpCount()
        if isinstance(stmt, (ast.Break, ast.Continue, ast.PipelinedLoop)):
            return OpCount()
        raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _for_ops(self, stmt: ast.For, profile: WorkloadProfile) -> OpCount:
        info = self._gc._loop_index_info(stmt)
        if info is not None:
            _, lo, hi = info
            trips = max(profile.evaluate(hi - lo), 0.0)
        else:
            trips = profile.get("loop.default_trip")
        body = self.stmt_ops(stmt.body, profile)
        per_iter = body + OpCount(iops=1, branches=1)  # index update + test
        total = per_iter.scaled(trips)
        if stmt.init is not None:
            total = total + self.stmt_ops(stmt.init, profile)
        return total

    # ---------------------------------------------------------- expressions
    def expr_ops(self, expr: ast.Expr, profile: WorkloadProfile) -> OpCount:
        total = OpCount()
        for node in ast.walk_exprs(expr):
            if isinstance(node, ast.Binary):
                if node.op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
                    total = total + OpCount(branches=1)
                elif _is_float(node.type):
                    total = total + OpCount(flops=1)
                else:
                    total = total + OpCount(iops=1)
            elif isinstance(node, ast.Unary):
                if node.op == "-":
                    if _is_float(node.type):
                        total = total + OpCount(flops=1)
                    else:
                        total = total + OpCount(iops=1)
                else:
                    total = total + OpCount(branches=1)
            elif isinstance(node, ast.Index):
                total = total + OpCount(iops=1)
            elif isinstance(node, ast.Ternary):
                total = total + OpCount(branches=1)
            elif isinstance(node, (ast.Call, ast.MethodCall)):
                total = total + self._call_ops(node, profile)
        return total

    def _lvalue_ops(self, expr: ast.Expr, profile: WorkloadProfile) -> OpCount:
        total = OpCount()
        node = expr
        while isinstance(node, (ast.FieldAccess, ast.Index)):
            if isinstance(node, ast.Index):
                total = total + OpCount(iops=1) + self.expr_ops(node.index, profile)
            node = node.obj
        return total

    def _call_ops(
        self, call: ast.Call | ast.MethodCall, profile: WorkloadProfile
    ) -> OpCount:
        target = call.target
        if isinstance(target, NativeSig):
            if target.intrinsic is not None:
                return target.intrinsic.cost(profile.as_mapping())
            return OpCount()
        if isinstance(target, MethodSig):
            key = f"{target.owner}.{target.name}"
            override = self.method_costs.get(key)
            if override is not None:
                return override(profile.as_mapping())  # type: ignore[operator]
            if key in self._stack or len(self._stack) >= self.max_call_depth:
                return OpCount()
            self._stack.append(key)
            try:
                return self.stmt_ops(target.decl.body, profile)
            finally:
                self._stack.pop()
        if getattr(call, "target_kind", "") == "domain_size":
            return OpCount(iops=1)
        return OpCount()
