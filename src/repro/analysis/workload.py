"""Workload profiles: the numbers that turn symbolic analysis results into
concrete cost-model inputs (paper §4.3).

The paper's compiler needs, for a given execution, the packet count, packet
sizes, and the data-dependent scale factors (how many triangles per accepted
cube, what fraction of cubes cross the isovalue, ...).  The paper does not
spell out where these come from; as in most pipeline-partitioning systems
they are workload knowledge supplied at compile time.  We make that input
explicit and first-class so experiments can sweep it.

Conventions for well-known parameter names:

* ``num_packets``  — N in the cost model (§4.3),
* ``packet_size``  — elements per packet in the pipelined domain,
* ``elem_bytes.<Class>`` — packed bytes per element of a class (filled in by
  codegen's layout when known),
* application-specific selectivities, e.g. ``sel.accept`` (fraction of cubes
  crossing the isovalue) or ``scale.triangles`` (triangles per accepted
  cube).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .values import SymExpr


@dataclass(slots=True)
class WorkloadProfile:
    """Parameter valuation used to evaluate :class:`SymExpr` quantities."""

    params: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key in ("num_packets", "packet_size"):
            self.params.setdefault(key, 1.0)

    def __getitem__(self, name: str) -> float:
        return self.params.get(name, 1.0)

    def get(self, name: str, default: float = 1.0) -> float:
        return self.params.get(name, default)

    def with_params(self, **updates: float) -> "WorkloadProfile":
        merged = dict(self.params)
        merged.update(updates)
        return WorkloadProfile(merged)

    @property
    def num_packets(self) -> int:
        return int(self.params["num_packets"])

    @property
    def packet_size(self) -> float:
        return self.params["packet_size"]

    def evaluate(self, expr: SymExpr | int | float) -> float:
        return SymExpr.coerce(expr).evaluate(self.params)

    def as_mapping(self) -> Mapping[str, float]:
        return dict(self.params)
