"""Interprocedural communication analysis (paper §4.2).

    "our analysis is applied interprocedurally.  The main issue in doing
    this is changing variable names from actual parameters to formal
    parameters and vice-versa.  Note that we perform context-sensitive
    analysis, i.e., a procedure included in multiple code segments is
    analyzed independently each time."

Two call kinds:

* **dialect methods** — the callee body is analyzed with the caller's
  :class:`~repro.analysis.gencons.GenConsAnalyzer`, then every resulting
  path is *renamed*: formal parameter roots become the actual-argument
  paths, unqualified field roots become ``receiver.field`` paths, and
  symbolic section bounds mentioning formals are substituted by the
  actual-argument index expressions.  Analysis happens afresh at every call
  site (context sensitivity by re-analysis); recursion deeper than the
  analyzer's ``max_call_depth`` degrades to the conservative summary.

* **intrinsics** — the declared summary's ``reads``/``writes`` path strings
  (rooted at formal parameter names) are renamed the same way.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.errors import AnalysisError
from ..lang.intrinsics import Intrinsic
from ..lang.typecheck import MethodSig, NativeSig
from ..lang.types import VarSymbol
from .values import AccessPath, ElemSel, FieldSel, Section, SymExpr


def effects_of_call(analyzer, call: ast.Expr):
    """(gen paths, cons paths) for one call, in the caller's namespace.

    ``analyzer`` is the calling :class:`GenConsAnalyzer`; we reuse its path
    and symbolic-expression builders so renaming stays consistent.
    """
    if isinstance(call, ast.MethodCall):
        if call.target_kind == "domain_size":
            path = analyzer._path(call.obj)
            return [], ([path] if path is not None else [])
        sig = call.target
        assert isinstance(sig, MethodSig), "typecheck before analysis"
        receiver = analyzer._path(call.obj)
        return _dialect_method_effects(analyzer, sig, call.args, receiver)
    if isinstance(call, ast.Call):
        target = call.target
        if call.target_kind == "intrinsic":
            assert isinstance(target, NativeSig)
            return _intrinsic_effects(analyzer, target, call.args)
        if call.target_kind == "method":
            assert isinstance(target, MethodSig)
            return _dialect_method_effects(analyzer, target, call.args, None)
    raise AnalysisError(f"unresolved call {call!r}", getattr(call, "span", None))


# ---------------------------------------------------------------------------
# Intrinsic summaries
# ---------------------------------------------------------------------------


def _intrinsic_effects(analyzer, sig: NativeSig, args: list[ast.Expr]):
    """Apply the declared summary.  Without a registered implementation we
    fall back to the sound default: every argument may be read, nothing is
    definitely written."""
    intr: Intrinsic | None = sig.intrinsic
    param_names = [p.name for p in sig.decl.params]
    arg_paths = {
        name: analyzer._path(arg) for name, arg in zip(param_names, args)
    }
    if intr is None:
        cons = [p for p in arg_paths.values() if p is not None]
        return [], cons
    gens: list[AccessPath] = []
    cons: list[AccessPath] = []
    for spec in intr.reads:
        path = _summary_path(spec, arg_paths)
        if path is not None:
            cons.append(path)
    for spec in intr.writes:
        if spec == "return":
            continue  # the enclosing assignment models the returned value
        path = _summary_path(spec, arg_paths)
        if path is not None:
            gens.append(path)
    return gens, cons


def _summary_path(
    spec: str, arg_paths: dict[str, AccessPath | None]
) -> AccessPath | None:
    """Resolve a summary path string like ``"cube.corners"`` or ``"pts[*]"``
    against the actual-argument paths."""
    parts = spec.replace("[*]", ".__ALL__").split(".")
    root_name, rest = parts[0], parts[1:]
    base = arg_paths.get(root_name)
    if base is None:
        return None
    path = base
    for part in rest:
        if part == "__ALL__":
            path = path.elem(Section.full())
        else:
            path = path.field(part)
    return path


# ---------------------------------------------------------------------------
# Dialect methods (context-sensitive re-analysis)
# ---------------------------------------------------------------------------


def _dialect_method_effects(
    analyzer,
    sig: MethodSig,
    args: list[ast.Expr],
    receiver: AccessPath | None,
):
    from .gencons import symbol_tag  # local import: module cycle

    key = f"{sig.owner}.{sig.name}"
    owner_type = analyzer.checked.classes.get(sig.owner)
    if owner_type is not None and owner_type.is_reduction:
        # Reduction-class methods are the §3 update operations: by the
        # Reducinterface contract they consume their arguments and fold
        # them into the receiver, regardless of how the (possibly stub)
        # body reads — runtime classes may replace it entirely.
        cons = [analyzer._path(a) for a in args]
        cons = [c for c in cons if c is not None]
        if receiver is not None:
            cons.append(receiver)
        return [], cons
    if (
        key in analyzer._call_stack
        or len(analyzer._call_stack) >= analyzer.max_call_depth
    ):
        # recursion / depth limit: conservative — may read everything
        # reachable from the arguments and receiver, no definite writes
        cons = [analyzer._path(a) for a in args]
        cons = [c for c in cons if c is not None]
        if receiver is not None:
            cons.append(receiver)
        return [], cons

    analyzer._call_stack.append(key)
    try:
        body_facts = analyzer.analyze(list(sig.decl.body.body))
    finally:
        analyzer._call_stack.pop()

    # Build the renaming: formal root symbol -> actual path; formal scalar
    # tag -> actual index expression (for symbolic section bounds).
    root_map: dict[int, AccessPath] = {}
    expr_map: dict[str, SymExpr] = {}
    for param, arg in zip(sig.decl.params, args):
        psym = param.symbol
        if not isinstance(psym, VarSymbol):
            continue
        apath = analyzer._path(arg)
        if apath is not None:
            root_map[id(psym)] = apath
        aexpr = analyzer._sym_expr(arg)
        if aexpr is not None:
            expr_map[symbol_tag(psym)] = aexpr

    def rename(path: AccessPath, must: bool) -> AccessPath | None:
        root = path.root
        selectors = tuple(
            ElemSel(_substitute_section(sel.section, expr_map))
            if isinstance(sel, ElemSel)
            else sel
            for sel in path.selectors
        )
        if root.kind == "field":
            if receiver is None:
                raise AnalysisError(
                    f"method '{key}' touches field '{root.name}' but is "
                    "called without a receiver",
                    sig.decl.span,
                )
            return AccessPath(
                receiver.root,
                receiver.selectors + (FieldSel(root.name),) + selectors,
                path.type,
            )
        if root.kind == "param":
            actual = root_map.get(id(root))
            if actual is None:
                return None  # literal/expression actual: no caller location
            return AccessPath(
                actual.root, actual.selectors + selectors, path.type
            )
        # callee locals die at return
        return None

    gens: list[AccessPath] = []
    cons: list[AccessPath] = []
    for g in body_facts.gen:
        renamed = rename(g, must=True)
        if renamed is not None:
            gens.append(renamed)
    for c in body_facts.cons:
        renamed = rename(c, must=False)
        if renamed is not None:
            cons.append(renamed)
    return gens, cons


def _substitute_section(section: Section, expr_map: dict[str, SymExpr]) -> Section:
    if section.kind != "rect" or not expr_map:
        return section
    from .values import Interval

    intervals = tuple(
        Interval(iv.lo.substitute(expr_map), iv.hi.substitute(expr_map))
        for iv in section.intervals
    )
    return Section.rect(*intervals)
