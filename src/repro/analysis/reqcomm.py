"""Required-communication analysis and volume estimation (paper §4.2-4.3).

Backward propagation over the candidate boundary chain::

    ReqComm(b_i) = ReqComm(b_{i+1}) - Gen(f_{i+1}) + Cons(f_{i+1})

with ``ReqComm`` past the last boundary seeded by the *live-out* set — what
the code following the ``PipelinedLoop`` (the viewing stage) still reads.
Subtraction uses must semantics, addition may semantics (Figure 2).

The paper's §4.2 observation — dropping a candidate boundary keeps the
computed ``ReqComm`` of the remaining boundaries correct — holds by
construction here and is property-tested.

:class:`VolumeModel` then prices a boundary in bytes for a given workload
profile:

* paths rooted at an element variable or a per-element local are carried
  once per *surviving record* of their foreach stream (packet size times
  the product of upstream guard selectivities);
* paths rooted at packet-level locals are carried once per packet;
* paths rooted outside the pipelined loop are broadcast once per run
  (amortized ``1/num_packets`` per packet); reduction-typed external roots
  are *stage state* — the runtime merges transparent copies and forwards
  the result once, so they are also amortized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..lang.typecheck import CheckedProgram
from ..lang.types import (
    ArrayType,
    ClassType,
    PrimType,
    RectdomainType,
    VarSymbol,
)
from .boundaries import Boundary, FilterChain
from .gencons import GenConsAnalyzer, SegmentFacts
from .values import AccessPath, ElemSel, FieldSel, PathSet
from .workload import WorkloadProfile


@dataclass(slots=True)
class CommAnalysis:
    """Per-chain result: facts for every atom, ReqComm for every boundary
    (index 0 = b_1 ... index n-1 = b_n) plus the live-out seed."""

    chain: FilterChain
    atom_facts: list[SegmentFacts]
    reqcomm: list[PathSet]
    live_out: PathSet


def live_out_paths(
    analyzer: GenConsAnalyzer, chain: FilterChain
) -> PathSet:
    """Cons of the statements that follow the PipelinedLoop in its method —
    the values the viewing stage still needs."""
    body = chain.method.body.body
    after: list[ast.Stmt] = []
    seen = False
    for stmt in body:
        if stmt is chain.loop:
            seen = True
            continue
        if seen:
            after.append(stmt)
    if not seen:
        # the loop is nested (inside an if, etc.): conservatively keep
        # every external root the loop itself defines
        return PathSet()
    facts = analyzer.analyze(after)
    return facts.cons


def analyze_communication(
    chain: FilterChain, analyzer: GenConsAnalyzer | None = None
) -> CommAnalysis:
    """Run Gen/Cons on every atom and propagate ReqComm backwards.

    This is the single pass of §4.2: each atom is analyzed exactly once and
    each boundary's set is produced by one set operation."""
    analyzer = analyzer or GenConsAnalyzer(chain.checked)
    atom_facts = [analyzer.analyze_atom(atom) for atom in chain.atoms]
    live_out = live_out_paths(analyzer, chain)

    n = len(chain.boundaries)
    reqcomm: list[PathSet] = [PathSet() for _ in range(n)]
    following = live_out.copy()
    for i in range(n - 1, -1, -1):
        facts = atom_facts[i + 1]  # segment after boundary b_{i+1}
        req = following.difference_must(facts.gen).union(facts.cons)
        reqcomm[i] = req
        chain.boundaries[i].reqcomm = req
        following = req
    return CommAnalysis(
        chain=chain, atom_facts=atom_facts, reqcomm=reqcomm, live_out=live_out
    )


# ---------------------------------------------------------------------------
# Volume model
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class VolumeModel:
    """Prices ReqComm sets in bytes under a workload profile.

    ``size_hints`` resolves data-dependent extents: keys are dotted path
    names (``"tris"``, ``"c.corners"`` or ``"Cube.corners"``), values are
    either numbers (elements) or profile parameter names.
    """

    checked: CheckedProgram
    size_hints: dict[str, object] = field(default_factory=dict)
    default_array_len: float = 1.0
    pointer_bytes: int = 8

    # -- per-path sizing -----------------------------------------------------
    def _hint_len(self, path: AccessPath, profile: WorkloadProfile) -> float | None:
        keys: list[str] = []
        names = [path.root.name] + [
            sel.name for sel in path.selectors if isinstance(sel, FieldSel)
        ]
        keys.append(".".join(names))
        if len(names) >= 2:
            keys.append(names[-1])
        # class-qualified key for the last field
        cls = self._owning_class(path)
        if cls is not None and len(names) >= 2:
            keys.insert(0, f"{cls}.{names[-1]}")
        for key in keys:
            if key in self.size_hints:
                hint = self.size_hints[key]
                if isinstance(hint, str):
                    return profile.get(hint)
                return float(hint)  # type: ignore[arg-type]
        return None

    def _owning_class(self, path: AccessPath) -> str | None:
        t = path.root.type
        last_cls: str | None = None
        for sel in path.selectors:
            if isinstance(sel, FieldSel):
                if isinstance(t, ClassType):
                    last_cls = t.name
                    try:
                        t = self.checked.field_type(t.name, sel.name)
                    except KeyError:
                        return last_cls
            elif isinstance(sel, ElemSel):
                if isinstance(t, ArrayType):
                    t = t.elem
                elif isinstance(t, RectdomainType):
                    t = t.elem
        return last_cls

    def class_bytes(self, class_name: str, profile: WorkloadProfile) -> float:
        """Packed size of one object: scalar fields plus hinted arrays."""
        decl = self.checked.class_decls[class_name]
        total = 0.0
        for f in decl.fields:
            ftype = self.checked.field_type(class_name, f.name)
            if isinstance(ftype, PrimType):
                total += ftype.byte_size
            elif isinstance(ftype, ArrayType) and isinstance(ftype.elem, PrimType):
                key = f"{class_name}.{f.name}"
                hint = self.size_hints.get(key, self.default_array_len)
                length = profile.get(hint) if isinstance(hint, str) else float(hint)
                total += ftype.elem.byte_size * length
            elif isinstance(ftype, ClassType):
                total += self.class_bytes(ftype.name, profile)
            else:
                total += self.pointer_bytes
        return total

    def path_bytes(self, path: AccessPath, profile: WorkloadProfile) -> float:
        """Bytes to transfer ONE instance of this path (one record's worth;
        multiplicity across the stream is applied by the caller)."""
        count = 1.0
        for sel in path.selectors:
            if isinstance(sel, ElemSel) and sel.section.kind == "rect":
                count *= max(profile.evaluate(sel.section.count()), 0.0)
        t = path.type
        if isinstance(t, PrimType):
            return count * t.byte_size
        if isinstance(t, ArrayType):
            length = self._hint_len(path, profile)
            if length is None:
                length = self.default_array_len
            elem = t.elem
            elem_bytes = (
                elem.byte_size
                if isinstance(elem, PrimType)
                else self.class_bytes(elem.name, profile)
                if isinstance(elem, ClassType)
                else float(self.pointer_bytes)
            )
            return count * length * elem_bytes
        if isinstance(t, ClassType):
            return count * self.class_bytes(t.name, profile)
        if isinstance(t, RectdomainType):
            return (
                count
                * profile.packet_size
                * self.class_bytes(t.elem.name, profile)
            )
        # untyped path (e.g. synthesized): assume a double
        return count * 8.0

    # -- multiplicity ----------------------------------------------------------
    def _root_foreach(self, chain: FilterChain, root: VarSymbol) -> int | None:
        for fid, fissioned in enumerate(chain.fissioned):
            if root is fissioned.elem_var or root in fissioned.local_roots:
                return fid
        return None

    def _packet_roots(self, chain: FilterChain) -> set[VarSymbol]:
        roots: set[VarSymbol] = set()
        for atom in chain.atoms:
            if atom.kind != "packet":
                continue
            for stmt in atom.stmts:
                for inner in ast.walk_stmts(stmt):
                    if isinstance(inner, ast.VarDecl) and isinstance(
                        inner.symbol, VarSymbol
                    ):
                        roots.add(inner.symbol)
        return roots

    def stream_cardinality(
        self,
        chain: FilterChain,
        boundary_index: int,
        foreach_id: int,
        profile: WorkloadProfile,
    ) -> float:
        """Records of foreach ``foreach_id`` surviving past boundary
        ``b_{boundary_index}`` (1-based): packet size times the product of
        guard selectivities applied at or before atom ``boundary_index``."""
        card = profile.packet_size
        for atom in chain.atoms[:boundary_index]:
            if atom.foreach_id == foreach_id and atom.guard_param is not None:
                card *= profile.get(atom.guard_param)
        return card

    def _reductions_written_before(
        self, chain: FilterChain, boundary_index: int
    ) -> set[VarSymbol]:
        """Reduction roots that some atom at or before ``boundary_index``
        may update (method-call receiver position)."""
        written: set[VarSymbol] = set()
        for atom in chain.atoms[:boundary_index]:
            for stmt in atom.stmts:
                for expr in ast.walk_exprs(stmt):
                    if isinstance(expr, ast.MethodCall) and isinstance(
                        expr.obj, ast.Name
                    ):
                        sym = expr.obj.symbol
                        if isinstance(sym, VarSymbol) and sym.is_reduction:
                            written.add(sym)
        return written

    def boundary_volume(
        self,
        chain: FilterChain,
        boundary: Boundary,
        reqcomm: PathSet,
        profile: WorkloadProfile,
    ) -> float:
        """Total bytes crossing ``boundary`` per packet.

        Reduction-typed values are special (paper §2.2, §5): before their
        first accumulating update they are *scratch state* — the consuming
        filter's ``init()`` allocates them, nothing crosses the stream;
        after an update, the partial accumulator crosses once per packet.
        """
        packet_roots = self._packet_roots(chain)
        hot_reductions = self._reductions_written_before(chain, boundary.index)
        total = 0.0
        priced_reductions: set[int] = set()
        for path in reqcomm:
            root = path.root
            if root.is_reduction:
                # price the whole accumulator once per root, not per path
                if root in hot_reductions and id(root) not in priced_reductions:
                    priced_reductions.add(id(root))
                    if isinstance(root.type, ClassType):
                        total += self.class_bytes(root.type.name, profile)
                    else:
                        total += self.path_bytes(path, profile)
                continue
            per_instance = self.path_bytes(path, profile)
            fid = self._root_foreach(chain, root)
            if fid is not None:
                mult = self.stream_cardinality(
                    chain, boundary.index, fid, profile
                )
            elif root is chain.packet_var:
                # the collection path itself already accounts for
                # packet_size via its Rectdomain type
                mult = 1.0
            elif root in packet_roots:
                mult = 1.0
            else:
                # external root (parameters, pre-loop scalars): broadcast
                # once per run, amortized over the packets
                mult = 1.0 / max(profile.num_packets, 1)
            total += per_instance * mult
        return total

    def final_output_volume(
        self, analysis: CommAnalysis, profile: WorkloadProfile
    ) -> float:
        """Bytes of the live-out set: what the last filter ships to the
        viewing node once per run, charged per packet amortized."""
        total = 0.0
        for path in analysis.live_out:
            total += self.path_bytes(path, profile)
        return total / max(profile.num_packets, 1)
