"""Alias information for the communication analysis.

Figure 2 of the paper assumes "(potentially conservative) alias information
is available": *must*-alias facts drive additions to ``Gen`` (a location is
only generated if it is definitely defined), *may*-alias facts drive
additions to ``Cons`` (anything possibly read must be communicated).

The dialect makes strong aliasing guarantees that the default oracle
exploits:

* elements of a ``Rectdomain`` never alias each other (language rule, §3);
* distinct local variables of class type may alias only if one was assigned
  from the other (we track direct copies within a segment);
* fields with different names never alias; arrays reached through different
  roots may alias only if their roots may alias.

The oracle is pluggable so tests can force fully-conservative behaviour and
measure how much precision the language rules buy (an ablation the paper
implies but does not run).
"""

from __future__ import annotations

from ..lang.types import VarSymbol
from .values import AccessPath


class AliasOracle:
    """Type- and copy-based oracle; sound for the dialect's semantics."""

    def __init__(self) -> None:
        # root -> set of roots it may alias (symmetric closure maintained)
        self._may: dict[int, set[VarSymbol]] = {}

    def record_copy(self, dst: VarSymbol, src: VarSymbol) -> None:
        """Note ``dst = src`` for reference types: the two roots now may
        alias (and transitively anything src already aliased)."""
        group = self._may.setdefault(id(src), {src})
        group.add(dst)
        self._may[id(dst)] = group

    def may_alias_roots(self, a: VarSymbol, b: VarSymbol) -> bool:
        if a is b:
            return True
        return b in self._may.get(id(a), ()) or a in self._may.get(id(b), ())

    def may_alias(self, a: AccessPath, b: AccessPath) -> bool:
        if not self.may_alias_roots(a.root, b.root):
            return False
        return AccessPath(a.root, a.selectors, a.type).overlaps(
            AccessPath(a.root, b.selectors, b.type)
        )

    def must_define(self, written: AccessPath, target: AccessPath) -> bool:
        """Does a write to ``written`` definitely define ``target``?
        Only same-root, covering paths qualify — a may-aliased root is not a
        *must* definition."""
        return written.root is target.root and written.covers(target)


class ConservativeOracle(AliasOracle):
    """Everything of compatible shape may alias; nothing must-defines
    anything but an identical path.  Used to ablate analysis precision."""

    def may_alias_roots(self, a: VarSymbol, b: VarSymbol) -> bool:  # noqa: D102
        return True

    def must_define(self, written: AccessPath, target: AccessPath) -> bool:  # noqa: D102
        return written.root is target.root and written == target
