"""The candidate filter boundary graph (paper §4.1).

    "The nodes in this graph are the candidate filter boundaries, with the
    exception of a start node that pre-dominates all other nodes, and an
    end node that post-dominates all other nodes.  An edge in this graph
    connects two candidate filter boundaries that are adjacent ... the
    candidate filter boundary graph is always acyclic.  A flow path in this
    graph is defined to be any path from the start node to the end node."

For the programs our frontend accepts the graph degenerates to a chain
(packet-level conditionals are kept inside a single atomic filter), but the
data structure is general: decomposition and its tests exercise branching
graphs directly, and :func:`chain_from_filter_chain` produces the chain for
a compiled program.

Nodes carry the *code segment* between boundaries implicitly: edge
``u -> v`` is labelled with the atomic filter that executes between the two
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from .boundaries import AtomicFilter, FilterChain


@dataclass(slots=True)
class BoundaryNode:
    """A candidate boundary, or the distinguished start/end node."""

    key: Hashable
    is_start: bool = False
    is_end: bool = False
    label: str = ""

    def __repr__(self) -> str:
        if self.is_start:
            return "<start>"
        if self.is_end:
            return "<end>"
        return f"<boundary {self.key}>"


@dataclass(slots=True)
class BoundaryEdge:
    """Adjacency between consecutive boundaries; carries the code segment
    (an atomic filter) that control flows through."""

    src: Hashable
    dst: Hashable
    segment: AtomicFilter | None = None


class CandidateBoundaryGraph:
    """Acyclic graph of candidate filter boundaries."""

    def __init__(self) -> None:
        self._nodes: dict[Hashable, BoundaryNode] = {}
        self._succ: dict[Hashable, list[BoundaryEdge]] = {}
        self._pred: dict[Hashable, list[BoundaryEdge]] = {}
        self.start_key: Hashable = "__start__"
        self.end_key: Hashable = "__end__"
        self.add_node(BoundaryNode(self.start_key, is_start=True))
        self.add_node(BoundaryNode(self.end_key, is_end=True))

    # -- construction --------------------------------------------------------
    def add_node(self, node: BoundaryNode) -> BoundaryNode:
        if node.key in self._nodes:
            raise ValueError(f"duplicate boundary node {node.key!r}")
        self._nodes[node.key] = node
        self._succ[node.key] = []
        self._pred[node.key] = []
        return node

    def add_boundary(self, key: Hashable, label: str = "") -> BoundaryNode:
        return self.add_node(BoundaryNode(key, label=label))

    def add_edge(
        self, src: Hashable, dst: Hashable, segment: AtomicFilter | None = None
    ) -> BoundaryEdge:
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError("both endpoints must be added before the edge")
        edge = BoundaryEdge(src, dst, segment)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    # -- queries ---------------------------------------------------------------
    def node(self, key: Hashable) -> BoundaryNode:
        return self._nodes[key]

    def nodes(self) -> list[BoundaryNode]:
        return list(self._nodes.values())

    def successors(self, key: Hashable) -> list[BoundaryEdge]:
        return list(self._succ[key])

    def predecessors(self, key: Hashable) -> list[BoundaryEdge]:
        return list(self._pred[key])

    def is_acyclic(self) -> bool:
        """Kahn's algorithm; the paper guarantees acyclicity by construction
        (loop fission + whole-filter inner loops), we verify it."""
        indeg = {k: len(self._pred[k]) for k in self._nodes}
        queue = [k for k, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            k = queue.pop()
            seen += 1
            for edge in self._succ[k]:
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    queue.append(edge.dst)
        return seen == len(self._nodes)

    def topological_order(self) -> list[Hashable]:
        indeg = {k: len(self._pred[k]) for k in self._nodes}
        queue = [k for k, d in indeg.items() if d == 0]
        order: list[Hashable] = []
        while queue:
            queue.sort(key=repr)  # deterministic
            k = queue.pop(0)
            order.append(k)
            for edge in self._succ[k]:
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    queue.append(edge.dst)
        if len(order) != len(self._nodes):
            raise ValueError("boundary graph has a cycle")
        return order

    def flow_paths(self, limit: int = 10_000) -> Iterator[list[BoundaryEdge]]:
        """Enumerate flow paths (start -> end) as edge lists.

        ``limit`` bounds the enumeration; branching graphs can be
        exponential, chains have exactly one path.
        """
        count = 0
        stack: list[tuple[Hashable, list[BoundaryEdge]]] = [(self.start_key, [])]
        while stack:
            key, path = stack.pop()
            if key == self.end_key:
                count += 1
                if count > limit:
                    raise ValueError(f"more than {limit} flow paths")
                yield path
                continue
            for edge in reversed(self._succ[key]):
                stack.append((edge.dst, path + [edge]))

    def segments_on_path(self, path: list[BoundaryEdge]) -> list[AtomicFilter]:
        return [edge.segment for edge in path if edge.segment is not None]


def chain_from_filter_chain(chain: FilterChain) -> CandidateBoundaryGraph:
    """Build the (linear) boundary graph for a compiled program's chain:
    start -> b_1 -> ... -> b_n -> end with atoms f_1..f_{n+1} on the edges."""
    graph = CandidateBoundaryGraph()
    keys: list[Hashable] = [graph.start_key]
    for boundary in chain.boundaries:
        graph.add_boundary(boundary.index, label=boundary.label)
        keys.append(boundary.index)
    keys.append(graph.end_key)
    for i, atom in enumerate(chain.atoms):
        graph.add_edge(keys[i], keys[i + 1], segment=atom)
    return graph
