"""Candidate filter boundary selection (paper §4.1).

The compiler focuses on a single ``PipelinedLoop`` over packets.  Its body
is decomposed into a sequence of **atomic filters** ``f_1 .. f_{n+1}``
separated by ``n`` **candidate boundaries** ``b_1 .. b_n``:

* every top-level ``foreach`` is fissioned (:mod:`repro.analysis.fission`)
  and contributes one *element* atomic filter per stage — the foreach start
  and end, each internal call, and each guard conditional are candidate
  boundaries;
* every other top-level statement group forms a *packet* atomic filter
  (executed once per packet);
* non-foreach loops (``for``/``while``) are kept whole inside one atomic
  filter, per the paper's restriction ("any loop that is not a foreach loop
  must be completely inside a single filter").

The resulting :class:`FilterChain` is the unit every later phase consumes:
Gen/Cons analysis runs per atomic filter, ReqComm annotates boundaries, the
cost model prices atoms, and the DP assigns atoms to computing units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..lang.errors import AnalysisError
from ..lang.typecheck import CheckedProgram
from ..lang.types import VarSymbol
from .fission import ElementStage, FissionedForeach, fission_foreach


@dataclass(slots=True)
class AtomicFilter:
    """One indivisible unit of work between two candidate boundaries.

    ``kind``:

    * ``"packet"`` — statements executed once per packet;
    * ``"element"`` — a fission stage executed once per surviving element
      of its foreach stream (``elem_var``/``foreach_id`` identify the
      stream, ``guard`` filters it, ``applied_guards`` names the
      selectivity parameters already applied upstream).
    """

    index: int  # 1-based: f_1 .. f_{n+1}
    kind: str
    stmts: list[ast.Stmt] = field(default_factory=list)
    label: str = ""
    # element-stage context
    elem_var: VarSymbol | None = None
    domain: ast.Expr | None = None
    foreach_id: int = -1
    guard: ast.Expr | None = None
    guard_param: str | None = None
    applied_guards: tuple[str, ...] = ()
    #: first/last stage of its foreach (foreach start/end boundary markers)
    opens_foreach: bool = False
    closes_foreach: bool = False

    @property
    def is_element(self) -> bool:
        return self.kind == "element"

    def __repr__(self) -> str:
        return f"<f{self.index} {self.kind} {self.label!r}>"


@dataclass(slots=True)
class Boundary:
    """Candidate boundary b_i between f_i and f_{i+1} (1-based)."""

    index: int
    before: AtomicFilter
    after: AtomicFilter
    # annotated later by the communication analysis:
    reqcomm: object = None  # PathSet
    label: str = ""

    def __repr__(self) -> str:
        return f"<b{self.index} {self.label!r}>"


@dataclass(slots=True)
class FilterChain:
    """The decomposition input: atoms f_1..f_{n+1}, boundaries b_1..b_n."""

    checked: CheckedProgram
    method: ast.MethodDecl
    loop: ast.PipelinedLoop
    atoms: list[AtomicFilter]
    boundaries: list[Boundary]
    packet_var: VarSymbol
    #: per-element roots: locals declared inside some foreach body (their
    #: values are carried per stream record across element boundaries)
    per_element_roots: set[VarSymbol]
    #: loop-variable symbols of the fissioned foreach loops
    elem_vars: set[VarSymbol]
    fissioned: list[FissionedForeach] = field(default_factory=list)

    @property
    def n_candidates(self) -> int:
        """n: the number of candidate boundaries."""
        return len(self.boundaries)

    def atom(self, index: int) -> AtomicFilter:
        """1-based accessor matching the paper's f_i numbering."""
        return self.atoms[index - 1]


def _check_no_pipelined_nesting(loop: ast.PipelinedLoop) -> None:
    for stmt in ast.walk_stmts(loop.body):
        if isinstance(stmt, ast.PipelinedLoop) and stmt is not loop:
            raise AnalysisError(
                "nested PipelinedLoop is not supported", stmt.span
            )


def _check_inner_loops_whole(stmts: list[ast.Stmt]) -> None:
    """for/while loops are legal but must sit entirely inside one atomic
    filter — which they do by construction; foreach nested inside another
    foreach is rejected (the paper's applications never need it and fission
    over nested streams is future work)."""
    for stmt in stmts:
        for inner in ast.walk_stmts(stmt):
            if inner is not stmt and isinstance(inner, ast.Foreach):
                if isinstance(stmt, ast.Foreach):
                    raise AnalysisError(
                        "nested foreach is not supported by boundary analysis",
                        inner.span,
                    )


def build_filter_chain(
    checked: CheckedProgram,
    method: ast.MethodDecl,
    loop: ast.PipelinedLoop,
) -> FilterChain:
    """Identify candidate boundaries in ``loop`` and build the chain."""
    _check_no_pipelined_nesting(loop)
    body = list(loop.body.body)
    _check_inner_loops_whole(body)

    atoms: list[AtomicFilter] = []
    per_element_roots: set[VarSymbol] = set()
    elem_vars: set[VarSymbol] = set()
    fissioned_loops: list[FissionedForeach] = []
    pending_packet: list[ast.Stmt] = []
    guard_serial = [0]

    def flush_packet() -> None:
        if pending_packet:
            atoms.append(
                AtomicFilter(
                    index=0,
                    kind="packet",
                    stmts=list(pending_packet),
                    label=f"packet#{len(atoms)}",
                )
            )
            pending_packet.clear()

    foreach_id = 0
    for stmt in body:
        if isinstance(stmt, ast.Foreach):
            flush_packet()
            fissioned = fission_foreach(stmt)
            # renumber guard params globally so two foreach loops in one
            # pipelined loop never collide
            stages = _renumber_guards(fissioned.stages, guard_serial)
            fissioned_loops.append(fissioned)
            per_element_roots |= fissioned.local_roots
            elem_vars.add(fissioned.elem_var)
            applied: list[str] = []
            for k, stage in enumerate(stages):
                atom = AtomicFilter(
                    index=0,
                    kind="element",
                    stmts=list(stage.stmts),
                    label=f"foreach#{foreach_id}.stage{k}",
                    elem_var=fissioned.elem_var,
                    domain=stmt.domain,
                    foreach_id=foreach_id,
                    guard=stage.guard,
                    guard_param=stage.guard_param,
                    applied_guards=tuple(applied),
                    opens_foreach=(k == 0),
                    closes_foreach=(k == len(stages) - 1),
                )
                if stage.guard_param is not None:
                    applied.append(stage.guard_param)
                atoms.append(atom)
            foreach_id += 1
        else:
            pending_packet.append(stmt)
    flush_packet()

    if not atoms:
        raise AnalysisError("PipelinedLoop body is empty", loop.span)

    for i, atom in enumerate(atoms):
        atom.index = i + 1

    boundaries = [
        Boundary(
            index=i + 1,
            before=atoms[i],
            after=atoms[i + 1],
            label=f"{atoms[i].label} | {atoms[i + 1].label}",
        )
        for i in range(len(atoms) - 1)
    ]

    assert loop.var_symbol is not None, "typecheck before boundary analysis"
    return FilterChain(
        checked=checked,
        method=method,
        loop=loop,
        atoms=atoms,
        boundaries=boundaries,
        packet_var=loop.var_symbol,  # type: ignore[arg-type]
        per_element_roots=per_element_roots,
        elem_vars=elem_vars,
        fissioned=fissioned_loops,
    )


def _renumber_guards(
    stages: list[ElementStage], serial: list[int]
) -> list[ElementStage]:
    out: list[ElementStage] = []
    for stage in stages:
        if stage.guard_param is not None:
            stage = ElementStage(
                stmts=stage.stmts,
                guard=stage.guard,
                guard_param=f"sel.g{serial[0]}",
            )
            serial[0] += 1
        out.append(stage)
    return out
