"""One-pass Gen/Cons analysis (paper §4.2, Figure 2).

For a code segment ``b`` (the statements of one atomic filter):

* ``Gen(b)``  — values *definitely defined* in ``b`` (must-alias updates),
* ``Cons(b)`` — values used in ``b`` and not defined in it (may-alias).

The algorithm walks the statement sequence **in reverse**:

* assignment ``s``: ``LHS(s)`` joins ``Gen`` and leaves ``Cons`` (must);
  ``RHS(s)`` uses join ``Cons`` (may);
* conditional ``s``: the block is analyzed independently; ``Cons(s)`` joins
  ``Cons(b)`` but ``Gen(s)`` is discarded — a guarded definition is not a
  definite definition;
* loop ``s``: the body's sets are computed once, accesses indexed by the
  loop variable are **widened to rectilinear sections** derived from the
  loop bounds, then ``Gen(s)`` joins ``Gen(b)`` and strikes ``Cons(b)``
  (the paper assumes loops execute at least one iteration);
* calls are expanded interprocedurally (dialect methods, context-sensitive)
  or through declared summaries (intrinsics) — see
  :mod:`repro.analysis.interproc`.

The entry points are :func:`analyze_segment` for raw statement lists and
:func:`analyze_atom` for :class:`~repro.analysis.boundaries.AtomicFilter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast
from ..lang.typecheck import CheckedProgram
from ..lang.types import ArrayType, ClassType, RectdomainType, VarSymbol
from .alias import AliasOracle
from .boundaries import AtomicFilter
from .values import (
    AccessPath,
    ElemSel,
    Interval,
    PathSet,
    Section,
    SymExpr,
)


def symbol_tag(sym: VarSymbol) -> str:
    """Symbolic-parameter name for a variable.

    ``runtime_define`` variables keep their source name so that workload
    profiles can bind them (e.g. ``num_packets``); everything else gets an
    identity-qualified tag so shadowed names stay distinct.
    """
    if sym.runtime_define or sym.kind == "param":
        return sym.name
    return f"{sym.name}@{id(sym):x}"


@dataclass(slots=True)
class SegmentFacts:
    """Result of analyzing one code segment."""

    gen: PathSet = field(default_factory=PathSet)
    cons: PathSet = field(default_factory=PathSet)

    def copy(self) -> "SegmentFacts":
        out = SegmentFacts()
        out.gen = self.gen.copy()
        out.cons = self.cons.copy()
        return out


class GenConsAnalyzer:
    """Single-pass Gen/Cons engine.  One instance per compilation; reuse is
    safe because all per-segment state is local to :meth:`analyze`."""

    def __init__(
        self,
        checked: CheckedProgram,
        alias: Optional[AliasOracle] = None,
        max_call_depth: int = 12,
    ) -> None:
        self.checked = checked
        self.alias = alias or AliasOracle()
        self.max_call_depth = max_call_depth
        self._call_stack: list[str] = []
        #: number of statement visits — tests assert the one-pass property
        self.visit_count = 0

    # ------------------------------------------------------------------ api
    def analyze(self, stmts: list[ast.Stmt]) -> SegmentFacts:
        facts = SegmentFacts()
        for stmt in reversed(stmts):
            self._apply(stmt, facts)
        return facts

    def analyze_atom(self, atom: AtomicFilter) -> SegmentFacts:
        """Gen/Cons of one atomic filter.  Element stages additionally
        consume their guard expression and their element variable's fields
        read by the guard."""
        facts = self.analyze(atom.stmts)
        if atom.guard is not None:
            for path in self._uses(atom.guard):
                facts.cons.add(path)
        return facts

    # ---------------------------------------------------------- statements
    def _apply(self, stmt: ast.Stmt, facts: SegmentFacts) -> None:
        self.visit_count += 1
        if isinstance(stmt, ast.Block):
            for inner in reversed(stmt.body):
                self._apply(inner, facts)
        elif isinstance(stmt, ast.VarDecl):
            self._apply_vardecl(stmt, facts)
        elif isinstance(stmt, ast.Assign):
            self._apply_assign(stmt, facts)
        elif isinstance(stmt, ast.ExprStmt):
            self._apply_effects_then_uses(stmt.expr, facts, value_used=False)
        elif isinstance(stmt, ast.If):
            self._apply_conditional(stmt, facts)
        elif isinstance(stmt, (ast.While, ast.For, ast.Foreach)):
            self._apply_loop(stmt, facts)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._apply_effects_then_uses(stmt.value, facts, value_used=True)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.PipelinedLoop)):
            # PipelinedLoop never appears inside a segment (checked earlier)
            pass
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _apply_vardecl(self, stmt: ast.VarDecl, facts: SegmentFacts) -> None:
        sym = stmt.symbol
        assert isinstance(sym, VarSymbol), "typecheck before analysis"
        if stmt.init is not None:
            target = AccessPath(sym, (), sym.type)
            facts.gen.add(target)
            facts.cons.remove_covered(target)
            self._apply_effects_then_uses(stmt.init, facts, value_used=True)
            self._record_copy(sym, stmt.init)
        else:
            # an uninitialized declaration defines nothing
            pass

    def _apply_assign(self, stmt: ast.Assign, facts: SegmentFacts) -> None:
        target = self._path(stmt.target)
        if target is not None and self._is_must_write(target):
            facts.gen.add(target)
            facts.cons.remove_covered(target)
        if stmt.op:  # compound assignment also reads the target
            if target is not None:
                facts.cons.add(target)
        # index sub-expressions of the target are reads
        for idx_use in self._index_uses(stmt.target):
            facts.cons.add(idx_use)
        self._apply_effects_then_uses(stmt.value, facts, value_used=True)
        if isinstance(stmt.target, ast.Name) and isinstance(
            stmt.target.symbol, VarSymbol
        ):
            self._record_copy(stmt.target.symbol, stmt.value)

    def _apply_conditional(self, stmt: ast.If, facts: SegmentFacts) -> None:
        # Fig 2: analyze the block(s) independently; only Cons propagates.
        then_facts = self.analyze(list(stmt.then.body))
        for path in then_facts.cons:
            facts.cons.add(path)
        if stmt.other is not None:
            else_facts = self.analyze(list(stmt.other.body))
            for path in else_facts.cons:
                facts.cons.add(path)
        self._apply_effects_then_uses(stmt.cond, facts, value_used=True)

    def _apply_loop(
        self, stmt: ast.While | ast.For | ast.Foreach, facts: SegmentFacts
    ) -> None:
        if isinstance(stmt, ast.Foreach):
            body_facts = self.analyze(list(stmt.body.body))
            gen_w, cons_w = self._widen_foreach(stmt, body_facts)
        else:
            inner_stmts = list(stmt.body.body)
            if isinstance(stmt, ast.For):
                prefix: list[ast.Stmt] = []
                if stmt.init is not None:
                    prefix.append(stmt.init)
                body_facts = self.analyze(prefix + inner_stmts)
                if stmt.update is not None:
                    update_facts = self.analyze([stmt.update])
                    for p in update_facts.cons:
                        body_facts.cons.add(p)
            else:
                body_facts = self.analyze(inner_stmts)
            gen_w, cons_w = self._widen_counted(stmt, body_facts)
            if isinstance(stmt, ast.While):
                self._apply_effects_then_uses(stmt.cond, facts, value_used=True)
            elif stmt.cond is not None:
                self._apply_effects_then_uses(stmt.cond, facts, value_used=True)
        # Fig 2 loop rule: Gen(s) joins Gen(b) and strikes Cons(b);
        # Cons(s) joins Cons(b).  (Loops are assumed to iterate >= once.)
        for g in gen_w:
            facts.gen.add(g)
            facts.cons.remove_covered(g)
        for c in cons_w:
            facts.cons.add(c)

    # ------------------------------------------------------------- widening
    def _loop_index_info(
        self, stmt: ast.For
    ) -> tuple[VarSymbol, SymExpr, SymExpr] | None:
        """Recognize ``for (int i = lo; i < hi; i += 1)`` (or ``i = i + 1``)
        and return (index symbol, lo, hi)."""
        init, cond, update = stmt.init, stmt.cond, stmt.update
        if not isinstance(init, ast.VarDecl) or init.init is None:
            return None
        sym = init.symbol
        if not isinstance(sym, VarSymbol):
            return None
        lo = self._sym_expr(init.init)
        if lo is None:
            return None
        if not (
            isinstance(cond, ast.Binary)
            and cond.op in ("<", "<=")
            and isinstance(cond.left, ast.Name)
            and cond.left.symbol is sym
        ):
            return None
        hi = self._sym_expr(cond.right)
        if hi is None:
            return None
        if cond.op == "<=":
            hi = hi + 1
        if not self._is_unit_step(update, sym):
            return None
        return sym, lo, hi

    @staticmethod
    def _is_unit_step(update: ast.Stmt | None, sym: VarSymbol) -> bool:
        if not isinstance(update, ast.Assign):
            return False
        if not (isinstance(update.target, ast.Name) and update.target.symbol is sym):
            return False
        if update.op == "+" and isinstance(update.value, ast.IntLit):
            return update.value.value == 1
        if update.op == "" and isinstance(update.value, ast.Binary):
            value = update.value
            return (
                value.op == "+"
                and isinstance(value.left, ast.Name)
                and value.left.symbol is sym
                and isinstance(value.right, ast.IntLit)
                and value.right.value == 1
            )
        return False

    def _widen_counted(
        self, stmt: ast.While | ast.For, facts: SegmentFacts
    ) -> tuple[PathSet, PathSet]:
        """Widen loop-variant sections.  Recognized counted loops produce
        exact rectilinear sections [lo, hi); anything else degrades: reads
        to UNKNOWN sections, loop-variant writes are dropped from Gen."""
        info = self._loop_index_info(stmt) if isinstance(stmt, ast.For) else None
        variant_tags: set[str] = set()
        for inner in ast.walk_stmts(stmt):
            if isinstance(inner, ast.Assign) and isinstance(inner.target, ast.Name):
                if isinstance(inner.target.symbol, VarSymbol):
                    variant_tags.add(symbol_tag(inner.target.symbol))
            if isinstance(inner, ast.VarDecl) and isinstance(inner.symbol, VarSymbol):
                variant_tags.add(symbol_tag(inner.symbol))
        gen_out, cons_out = PathSet(), PathSet()
        if info is not None:
            sym, lo, hi = info
            tag = symbol_tag(sym)
            exact = Section.rect(Interval(lo, hi))
            for g in facts.gen:
                widened = self._widen_path(g, {tag}, exact, must=True,
                                           other_variant=variant_tags - {tag})
                if widened is not None:
                    gen_out.add(widened)
            for c in facts.cons:
                if c.root is sym:
                    continue  # the loop defines its own index
                cons_out.add(
                    self._widen_path(c, {tag}, exact, must=False,
                                     other_variant=variant_tags - {tag})
                    or c
                )
        else:
            for g in facts.gen:
                widened = self._widen_path(g, variant_tags, Section.unknown(),
                                           must=True, other_variant=set())
                if widened is not None:
                    gen_out.add(widened)
            for c in facts.cons:
                cons_out.add(
                    self._widen_path(c, variant_tags, Section.unknown(),
                                     must=False, other_variant=set())
                    or c
                )
        return gen_out, cons_out

    def _widen_foreach(
        self, stmt: ast.Foreach, facts: SegmentFacts
    ) -> tuple[PathSet, PathSet]:
        """Rebase element-variable paths onto the iterated collection with
        FULL sections (every element is visited), mirroring the Fig 2 rule
        of replacing index functions by sections from the bounds."""
        elem = stmt.var_symbol
        assert isinstance(elem, VarSymbol)
        domain_path = self._path(stmt.domain)
        gen_out, cons_out = PathSet(), PathSet()
        for g in facts.gen:
            rebased = self._rebase_elem(g, elem, domain_path, must=True)
            if rebased is not None:
                gen_out.add(rebased)
        for c in facts.cons:
            rebased = self._rebase_elem(c, elem, domain_path, must=False)
            if rebased is not None:
                cons_out.add(rebased)
        if domain_path is not None:
            cons_out.add(domain_path)
        return gen_out, cons_out

    def _rebase_elem(
        self,
        path: AccessPath,
        elem: VarSymbol,
        domain_path: AccessPath | None,
        must: bool,
    ) -> AccessPath | None:
        if path.root is not elem:
            # locals declared inside the foreach die at loop exit
            if must and path.root.kind == "local":
                return None
            return path
        if domain_path is None:
            return None
        section = Section.full()
        return AccessPath(
            domain_path.root,
            domain_path.selectors + (ElemSel(section),) + path.selectors,
            path.type,
        )

    def _widen_path(
        self,
        path: AccessPath,
        variant_tags: set[str],
        section: Section,
        must: bool,
        other_variant: set[str],
    ) -> AccessPath | None:
        """Replace element selectors whose bounds mention loop-variant
        symbols.  For must (Gen) paths, selectors depending on *other*
        variant symbols (not the recognized index) defeat must-ness."""
        changed = False
        selectors = []
        for sel in path.selectors:
            if isinstance(sel, ElemSel) and sel.section.kind == "rect":
                params = set()
                for iv in sel.section.intervals:
                    params |= iv.lo.parameters() | iv.hi.parameters()
                if params & variant_tags:
                    selectors.append(ElemSel(section))
                    changed = True
                    continue
                if params & other_variant:
                    if must:
                        return None
                    selectors.append(ElemSel(Section.unknown()))
                    changed = True
                    continue
            selectors.append(sel)
        if not changed:
            return path
        return AccessPath(path.root, tuple(selectors), path.type)

    # ------------------------------------------------------------ expressions
    def _record_copy(self, dst: VarSymbol, value: ast.Expr) -> None:
        if isinstance(value, ast.Name) and isinstance(value.symbol, VarSymbol):
            if isinstance(dst.type, (ClassType, ArrayType, RectdomainType)):
                self.alias.record_copy(dst, value.symbol)

    def _apply_effects_then_uses(
        self, expr: ast.Expr, facts: SegmentFacts, value_used: bool
    ) -> None:
        """Process an expression appearing on a RHS (or as a statement):
        call side effects first (they happen before the enclosing use, and
        we are scanning backwards), then plain uses."""
        for call in self._calls_in(expr):
            gens, cons = self.call_effects(call)
            for g in gens:
                facts.gen.add(g)
                facts.cons.remove_covered(g)
            for c in cons:
                facts.cons.add(c)
        for use in self._uses(expr):
            facts.cons.add(use)

    def _calls_in(self, expr: ast.Expr) -> list[ast.Expr]:
        return [
            e
            for e in ast.walk_exprs(expr)
            if isinstance(e, (ast.Call, ast.MethodCall))
        ]

    def _uses(self, expr: ast.Expr) -> list[AccessPath]:
        """May-read paths of an expression (excluding call side effects,
        which :meth:`call_effects` reports)."""
        out: list[AccessPath] = []
        self._collect_uses(expr, out)
        return out

    def _collect_uses(self, expr: ast.Expr, out: list[AccessPath]) -> None:
        if isinstance(expr, ast.Name):
            if isinstance(expr.symbol, VarSymbol):
                out.append(AccessPath(expr.symbol, (), expr.type))
        elif isinstance(expr, (ast.FieldAccess, ast.Index)):
            path = self._path(expr)
            if path is not None:
                out.append(path)
            else:
                self._collect_uses(expr.obj, out)
            if isinstance(expr, ast.Index):
                self._collect_uses(expr.index, out)
        elif isinstance(expr, (ast.Call, ast.MethodCall)):
            # Pathable arguments are governed by call_effects (summaries /
            # interprocedural analysis) — a write-only argument must not be
            # re-added as a read here.  Non-path arguments (arithmetic
            # expressions) still contribute their own reads.
            for arg in expr.args:
                if self._path(arg) is None:
                    self._collect_uses(arg, out)
            if isinstance(expr, ast.MethodCall) and self._path(expr.obj) is None:
                self._collect_uses(expr.obj, out)
        elif isinstance(expr, ast.Unary):
            self._collect_uses(expr.operand, out)
        elif isinstance(expr, ast.Binary):
            self._collect_uses(expr.left, out)
            self._collect_uses(expr.right, out)
        elif isinstance(expr, ast.Ternary):
            self._collect_uses(expr.cond, out)
            self._collect_uses(expr.then, out)
            self._collect_uses(expr.other, out)
        elif isinstance(expr, ast.New):
            for arg in expr.args:
                self._collect_uses(arg, out)
        elif isinstance(expr, ast.NewArray):
            self._collect_uses(expr.length, out)
        # literals: no uses

    def _index_uses(self, expr: ast.Expr) -> list[AccessPath]:
        """Reads performed by the index sub-expressions of an lvalue."""
        out: list[AccessPath] = []
        node = expr
        while isinstance(node, (ast.FieldAccess, ast.Index)):
            if isinstance(node, ast.Index):
                self._collect_uses(node.index, out)
            node = node.obj
        return out

    # --------------------------------------------------------------- paths
    def _path(self, expr: ast.Expr) -> AccessPath | None:
        if isinstance(expr, ast.Name):
            if isinstance(expr.symbol, VarSymbol):
                return AccessPath(expr.symbol, (), expr.type)
            return None
        if isinstance(expr, ast.FieldAccess):
            base = self._path(expr.obj)
            if base is None:
                return None
            return base.field(expr.field_name, expr.type)
        if isinstance(expr, ast.Index):
            base = self._path(expr.obj)
            if base is None:
                return None
            idx = self._sym_expr(expr.index)
            section = Section.point(idx) if idx is not None else Section.unknown()
            return base.elem(section, expr.type)
        return None

    def _sym_expr(self, expr: ast.Expr) -> SymExpr | None:
        """Convert an index expression to a symbolic polynomial, or None."""
        if isinstance(expr, ast.IntLit):
            return SymExpr.const(expr.value)
        if isinstance(expr, ast.Name) and isinstance(expr.symbol, VarSymbol):
            return SymExpr.var(symbol_tag(expr.symbol))
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._sym_expr(expr.operand)
            return None if inner is None else -inner
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-", "*"):
            left = self._sym_expr(expr.left)
            right = self._sym_expr(expr.right)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            return left * right
        return None

    def _is_must_write(self, path: AccessPath) -> bool:
        """A write is a definite definition when every element selector is
        an exact point or full section (no unknowns)."""
        for sel in path.selectors:
            if isinstance(sel, ElemSel) and sel.section.kind == "unknown":
                return False
        return True

    # ----------------------------------------------------------- call effects
    def call_effects(
        self, call: ast.Expr
    ) -> tuple[list[AccessPath], list[AccessPath]]:
        """(gen paths, cons paths) of one call expression, renamed into the
        caller's namespace.  Dispatches to interprocedural analysis for
        dialect methods and to declared summaries for intrinsics."""
        from .interproc import effects_of_call  # local import: cycle-free

        return effects_of_call(self, call)
