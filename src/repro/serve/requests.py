"""Request/response types of the serving subsystem.

A :class:`Request` is one client question ("the 3 nearest neighbours of
this point", "this region of the slide at this subsampling"); the broker
admits it, the dispatcher batches it, a warm pipeline answers it, and the
client reads the :class:`Response` off the request's
:class:`PendingResponse` future.

A *service* (one per application kind, see ``make_knn_service`` /
``make_vmscope_service`` in :mod:`repro.apps`) translates a request body
into a :class:`ServicePlan` — the request→packet adapter: which program
to compile (plan-cache key material), which packets to stream, which
runtime parameters carry the request, and how to extract the response
value from the pipeline's final payloads.  Requests whose plans share a
``group_key`` are *compatible*: the dispatcher executes the pipeline once
for the whole group and demultiplexes the result to every member.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol, Sequence, runtime_checkable

from ..core.compiler import CompileOptions
from ..lang.intrinsics import IntrinsicRegistry

#: request kind reserved for the metrics surface (answered by the server
#: itself, never by a pipeline)
STATS_KIND = "stats"

#: terminal response statuses
STATUSES = (
    "ok",          # served; ``value`` holds the answer
    "rejected",    # admission control refused it (queue full, policy "reject")
    "shed",        # load shedding dropped it (policy "shed-oldest")
    "expired",     # its deadline passed before execution
    "error",       # the pipeline raised; ``error`` carries the message
    "shutdown",    # the server stopped before serving it
)

_request_ids = itertools.count(1)


@dataclass(slots=True)
class Request:
    """One client request, stamped at admission."""

    kind: str
    body: Mapping[str, Any] = field(default_factory=dict)
    #: absolute ``time.monotonic()`` deadline; None = no deadline
    deadline: float | None = None
    id: int = field(default_factory=lambda: next(_request_ids))
    #: admission timestamp (monotonic), set by the server
    t_submit: float = field(default_factory=time.monotonic)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) > self.deadline


@dataclass(slots=True)
class Response:
    """The answer to one request, with its serving telemetry."""

    id: int
    kind: str
    status: str
    value: Any = None
    error: str | None = None
    #: seconds from admission to response
    latency: float = 0.0
    #: seconds the serving execution took (0 for non-"ok" responses)
    service_seconds: float = 0.0
    #: how many requests shared this response's pipeline execution
    group_size: int = 0
    #: how many requests rode in the same dispatch batch
    batch_size: int = 0
    #: whether the compilation came from the plan cache
    cache_hit: bool = False
    #: suggested client backoff when status == "rejected"
    retry_after: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class PendingResponse:
    """A minimal future: the client-side handle of an in-flight request."""

    def __init__(self, request: Request) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: Response | None = None

    def resolve(self, response: Response) -> None:
        """Deliver the response (server side; idempotent — first wins)."""
        if self._response is None:
            self._response = response
            self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Response:
        """Block until the response arrives."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.id} ({self.request.kind}) still "
                f"in flight after {timeout}s"
            )
        assert self._response is not None
        return self._response


@dataclass(slots=True)
class ServicePlan:
    """Everything needed to answer one request through a pipeline.

    ``group_key`` is the compatibility identity: requests whose plans
    carry equal keys are answered by one pipeline execution (the compile
    inputs and run parameters must then be identical — the adapters
    guarantee it by deriving the key from the same canonical values the
    plan is built from)."""

    service: str
    group_key: str
    source: str
    registry: IntrinsicRegistry | None
    options: CompileOptions
    packets: Sequence[Any]
    params: dict[str, Any]
    #: final-stage payloads -> the response value
    extract: Callable[[list[Any]], Any]
    widths: Sequence[int] | None = None


@runtime_checkable
class Service(Protocol):
    """A request→packet adapter for one application kind."""

    name: str

    def plan(self, body: Mapping[str, Any]) -> ServicePlan:  # pragma: no cover
        ...
