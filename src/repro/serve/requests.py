"""Request/response types of the serving subsystem.

A :class:`Request` is one client question ("the 3 nearest neighbours of
this point", "this region of the slide at this subsampling"); the broker
admits it, the dispatcher batches it, a warm pipeline answers it, and the
client reads the :class:`Response` off the request's
:class:`PendingResponse` future.

A *service* (one per application kind, see ``make_knn_service`` /
``make_vmscope_service`` in :mod:`repro.apps`) translates a request body
into a :class:`ServicePlan` — the request→packet adapter: which program
to compile (plan-cache key material), which packets to stream, which
runtime parameters carry the request, and how to extract the response
value from the pipeline's final payloads.  Requests whose plans share a
``group_key`` are *compatible*: the dispatcher executes the pipeline once
for the whole group and demultiplexes the result to every member.

Services may additionally opt into **request fusion** — merging requests
whose runtime params *differ* into one lane-batched execution.  The
protocol is three ``ServicePlan`` fields: ``fuse_key`` (the compatibility
identity *excluding* per-request params; ``None`` opts out), ``fuse``
(a combiner taking the distinct plans of one fusion group and returning
a single plan whose params carry a lane-indexed batch), and — on the
combined plan — ``extract_lane`` (the per-lane demultiplexer, payloads +
lane index → that lane's response value) with ``lanes`` recording the
lane count.  The dispatcher in :mod:`repro.serve.server` groups by
``fuse_key``, assigns one lane per distinct ``group_key``, and falls back
to plain equal-``group_key`` coalescing when fusion is off, unsupported,
or the group collapses to a single lane.

Both types know their own **wire encoding** (:meth:`Request.to_wire` /
:meth:`Request.from_wire` and the Response pair): a JSON-safe header
dict plus a list of opaque binary segments holding bulk payloads
(ndarrays, bytes) — framing and transmission live in
:mod:`repro.serve.transport`, but *what* goes on the wire is defined
here, next to the types, under an explicit :data:`SCHEMA_VERSION`.
Decoding a frame from a future (or corrupted) schema raises
:class:`SchemaVersionError`, which the transport maps to a structured
error response rather than a dead connection.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.compiler import CompileOptions
from ..lang.intrinsics import IntrinsicRegistry

#: request kind reserved for the metrics surface (answered by the server
#: itself, never by a pipeline)
STATS_KIND = "stats"

#: terminal response statuses
STATUSES = (
    "ok",          # served; ``value`` holds the answer
    "rejected",    # admission control refused it (queue full, policy "reject")
    "shed",        # load shedding dropped it (policy "shed-oldest")
    "expired",     # its deadline passed before execution
    "error",       # the pipeline raised; ``error`` carries the message
    "shutdown",    # the server stopped before serving it
)

_request_ids = itertools.count(1)

#: version of the Request/Response wire schema; bump on any change to the
#: header layout or the value-encoding markers below (2: response header
#: gained ``fused_lanes``; 3: request/response headers carry the optional
#: distributed-tracing ``trace`` id)
SCHEMA_VERSION = 3

#: schema versions this build decodes.  v3 only *adds* the optional
#: ``trace`` key, so v2 frames decode with a server-minted trace id and
#: v2 readers that tolerate unknown keys can ignore it.
SUPPORTED_SCHEMAS = (2, 3)


def mint_trace_id() -> str:
    """A fresh 64-bit request trace id (hex), minted client side for
    remote requests and at construction otherwise."""
    return uuid.uuid4().hex[:16]


class WireFormatError(ValueError):
    """A wire header or value that cannot be encoded/decoded."""


class SchemaVersionError(WireFormatError):
    """A wire header stamped with a schema version this build can't read."""


def encode_value(value: Any, segments: list[bytes]) -> Any:
    """JSON-safe form of one payload value; bulk bytes go to ``segments``.

    Markers (single-key dicts) carry everything JSON can't: ndarrays and
    bytes become binary segments referenced by index, dicts become
    ``__map__`` pair lists (keys survive non-string and nothing collides
    with the markers), tuples/sets keep their type, non-finite floats
    ride as strings.  Anything else is refused loudly — the wire carries
    data, not pickled code."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return {"__float__": repr(value)}
        return value
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        segments.append(arr.tobytes())
        return {
            "__ndarray__": {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "segment": len(segments) - 1,
            }
        }
    if isinstance(value, np.generic):
        return encode_value(np.asarray(value), segments) | {"__scalar__": True}
    if isinstance(value, (bytes, bytearray, memoryview)):
        segments.append(bytes(value))
        return {"__bytes__": len(segments) - 1}
    if isinstance(value, dict):
        return {
            "__map__": [
                [encode_value(k, segments), encode_value(v, segments)]
                for k, v in value.items()
            ]
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v, segments) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": [encode_value(v, segments) for v in sorted(value, key=repr)]}
    if isinstance(value, list):
        return [encode_value(v, segments) for v in value]
    raise WireFormatError(
        f"cannot encode {type(value).__name__} for the wire "
        "(supported: None/bool/int/float/str/bytes/list/tuple/set/dict/ndarray)"
    )


def decode_value(obj: Any, segments: Sequence[bytes]) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(obj, list):
        return [decode_value(v, segments) for v in obj]
    if not isinstance(obj, dict):
        return obj
    try:
        if "__float__" in obj:
            return float(obj["__float__"])
        if "__ndarray__" in obj:
            spec = obj["__ndarray__"]
            seg = _segment(segments, spec["segment"])
            arr = np.frombuffer(seg, dtype=np.dtype(spec["dtype"]))
            arr = arr.reshape(spec["shape"]).copy()  # writable, owns its data
            return arr[()] if obj.get("__scalar__") else arr
        if "__bytes__" in obj:
            return _segment(segments, obj["__bytes__"])
        if "__map__" in obj:
            return {
                _hashable(decode_value(k, segments)): decode_value(v, segments)
                for k, v in obj["__map__"]
            }
        if "__tuple__" in obj:
            return tuple(decode_value(v, segments) for v in obj["__tuple__"])
        if "__set__" in obj:
            return {_hashable(decode_value(v, segments)) for v in obj["__set__"]}
    except (IndexError, KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed wire value: {exc}") from None
    raise WireFormatError(f"unknown wire marker in {sorted(obj)}")


def _segment(segments: Sequence[bytes], index: Any) -> bytes:
    """Bounds-checked segment lookup: a marker must reference a segment by
    a non-negative in-range int — negative indices would silently alias
    from the end, letting a malformed frame decode to the wrong payload."""
    if (
        not isinstance(index, int)
        or isinstance(index, bool)
        or not 0 <= index < len(segments)
    ):
        raise WireFormatError(
            f"bad segment index {index!r} (frame has {len(segments)} segments)"
        )
    return segments[index]


def _hashable(value: Any) -> Any:
    """Decoded keys must hash; lists (the JSON carrier) become tuples."""
    return tuple(value) if isinstance(value, list) else value


def _require_schema(header: Mapping[str, Any]) -> None:
    version = header.get("schema")
    if version not in SUPPORTED_SCHEMAS:
        raise SchemaVersionError(
            f"unsupported wire schema version {version!r} "
            f"(this build speaks {', '.join(map(str, SUPPORTED_SCHEMAS))})"
        )


@dataclass(slots=True)
class Request:
    """One client request, stamped at admission."""

    kind: str
    body: Mapping[str, Any] = field(default_factory=dict)
    #: absolute ``time.monotonic()`` deadline; None = no deadline
    deadline: float | None = None
    id: int = field(default_factory=lambda: next(_request_ids))
    #: admission timestamp (monotonic), set by the server
    t_submit: float = field(default_factory=time.monotonic)
    #: end-to-end distributed-trace id (client-minted for remote
    #: requests; the server mints one when a v2 frame omits it)
    trace_id: str = field(default_factory=mint_trace_id)
    #: submission timestamp on the span timeline (``perf_counter``),
    #: the zero point of the request's stage spans
    t_perf: float = field(default_factory=time.perf_counter)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) > self.deadline

    # -- wire encoding ------------------------------------------------------
    def to_wire(self) -> tuple[dict[str, Any], list[bytes]]:
        """(JSON-safe header, binary segments) for one request frame.

        Deadlines travel as *remaining seconds* — absolute ``monotonic``
        timestamps are meaningless on another host; the receiving server
        re-anchors them at decode time."""
        segments: list[bytes] = []
        remaining = None
        if self.deadline is not None:
            remaining = max(self.deadline - time.monotonic(), 0.0)
        return (
            {
                "schema": SCHEMA_VERSION,
                "id": self.id,
                "kind": self.kind,
                "body": encode_value(dict(self.body), segments),
                "deadline": remaining,
                "trace": self.trace_id,
            },
            segments,
        )

    @classmethod
    def from_wire(
        cls, header: Mapping[str, Any], segments: Sequence[bytes]
    ) -> "Request":
        """Rebuild a request from a decoded frame (fresh local id and
        admission stamp; the sender's id is transport correlation state).

        Raises :class:`SchemaVersionError` for frames from an unknown
        schema, :class:`WireFormatError` for malformed ones."""
        _require_schema(header)
        try:
            kind = header["kind"]
            body = decode_value(header["body"], segments)
            remaining = header.get("deadline")
        except KeyError as exc:
            raise WireFormatError(f"request header missing {exc}") from None
        if not isinstance(kind, str) or not isinstance(body, dict):
            raise WireFormatError("request kind must be str and body a mapping")
        if remaining is not None and not isinstance(remaining, (int, float)):
            raise WireFormatError("request deadline must be a number or null")
        trace = header.get("trace")  # absent on v2 frames: mint locally
        if trace is not None and not isinstance(trace, str):
            raise WireFormatError("request trace id must be a string or absent")
        return cls(
            kind=kind,
            body=body,
            deadline=time.monotonic() + remaining if remaining is not None else None,
            trace_id=trace if trace else mint_trace_id(),
        )


@dataclass(slots=True)
class Response:
    """The answer to one request, with its serving telemetry."""

    id: int
    kind: str
    status: str
    value: Any = None
    error: str | None = None
    #: seconds from admission to response
    latency: float = 0.0
    #: seconds the serving execution took (0 for non-"ok" responses)
    service_seconds: float = 0.0
    #: how many requests shared this response's pipeline execution
    group_size: int = 0
    #: how many requests rode in the same dispatch batch
    batch_size: int = 0
    #: lanes in the fused execution that served this request (0 = the
    #: execution was not fused)
    fused_lanes: int = 0
    #: whether the compilation came from the plan cache
    cache_hit: bool = False
    #: suggested client backoff when status == "rejected"
    retry_after: float | None = None
    #: the request's distributed-trace id, echoed back (None from v2 peers)
    trace_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # -- wire encoding ------------------------------------------------------
    def to_wire(self) -> tuple[dict[str, Any], list[bytes]]:
        """(JSON-safe header, binary segments) for one response frame."""
        segments: list[bytes] = []
        return (
            {
                "schema": SCHEMA_VERSION,
                "id": self.id,
                "kind": self.kind,
                "status": self.status,
                "value": encode_value(self.value, segments),
                "error": self.error,
                "latency": self.latency,
                "service_seconds": self.service_seconds,
                "group_size": self.group_size,
                "batch_size": self.batch_size,
                "fused_lanes": self.fused_lanes,
                "cache_hit": self.cache_hit,
                "retry_after": self.retry_after,
                "trace": self.trace_id,
            },
            segments,
        )

    @classmethod
    def from_wire(
        cls, header: Mapping[str, Any], segments: Sequence[bytes]
    ) -> "Response":
        _require_schema(header)
        try:
            return cls(
                id=header["id"],
                kind=header["kind"],
                status=header["status"],
                value=decode_value(header["value"], segments),
                error=header.get("error"),
                latency=header.get("latency", 0.0),
                service_seconds=header.get("service_seconds", 0.0),
                group_size=header.get("group_size", 0),
                batch_size=header.get("batch_size", 0),
                fused_lanes=header.get("fused_lanes", 0),
                cache_hit=bool(header.get("cache_hit", False)),
                retry_after=header.get("retry_after"),
                trace_id=header.get("trace"),
            )
        except KeyError as exc:
            raise WireFormatError(f"response header missing {exc}") from None


class PendingResponse:
    """A minimal future: the client-side handle of an in-flight request."""

    def __init__(self, request: Request) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: Response | None = None

    def resolve(self, response: Response) -> None:
        """Deliver the response (server side; idempotent — first wins)."""
        if self._response is None:
            self._response = response
            self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Response:
        """Block until the response arrives."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.id} ({self.request.kind}) still "
                f"in flight after {timeout}s"
            )
        assert self._response is not None
        return self._response


@dataclass(slots=True)
class ServicePlan:
    """Everything needed to answer one request through a pipeline.

    ``group_key`` is the compatibility identity: requests whose plans
    carry equal keys are answered by one pipeline execution (the compile
    inputs and run parameters must then be identical — the adapters
    guarantee it by deriving the key from the same canonical values the
    plan is built from).

    The optional **fusion protocol** lets the dispatcher merge plans with
    *different* runtime params into one lane-batched execution:
    ``fuse_key`` is the fusion compatibility identity (everything that
    must match *except* the per-request params; ``None`` means the
    service does not fuse — the dispatcher checks this field, never
    ``hasattr``), and ``fuse`` combines one plan per distinct
    ``group_key`` into a single batched plan.  A plan returned by
    ``fuse`` carries ``extract_lane`` (payloads + lane index → that
    lane's value; lane *i* answers the *i*-th input plan) and ``lanes``,
    and must itself have ``fuse_key=None``."""

    service: str
    group_key: str
    source: str
    registry: IntrinsicRegistry | None
    options: CompileOptions
    packets: Sequence[Any]
    params: dict[str, Any]
    #: final-stage payloads -> the response value
    extract: Callable[[list[Any]], Any]
    widths: Sequence[int] | None = None
    #: fusion compatibility identity; None = this plan cannot be fused
    fuse_key: str | None = None
    #: combiner: one plan per distinct group_key -> one lane-batched plan
    fuse: Callable[[Sequence["ServicePlan"]], "ServicePlan"] | None = None
    #: per-lane demultiplexer of a fused plan's payloads
    extract_lane: Callable[[list[Any], int], Any] | None = None
    #: lane count of a fused plan (1 for ordinary plans)
    lanes: int = 1


@runtime_checkable
class Service(Protocol):
    """A request→packet adapter for one application kind."""

    name: str

    def plan(self, body: Mapping[str, Any]) -> ServicePlan:  # pragma: no cover
        ...
