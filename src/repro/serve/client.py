"""The in-repo client: how tests, benchmarks, and the CLI talk to a server.

:class:`LocalClient` speaks directly to a :class:`PipelineServer` in the
same process — the transport is a function call, which keeps the serving
semantics (admission, batching, deadlines, shedding) testable without a
network stack.  A multi-host transport that serializes the same
Request/Response types over a socket is a ROADMAP item; clients written
against this surface will not change.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

from .requests import STATS_KIND, PendingResponse, Response
from .server import PipelineServer


class LocalClient:
    """Blocking + pipelined request helpers over one in-process server."""

    def __init__(self, server: PipelineServer, timeout: float = 120.0) -> None:
        self.server = server
        self.timeout = timeout

    # -- generic ------------------------------------------------------------
    def submit(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> PendingResponse:
        """Fire one request without waiting (pipelined clients)."""
        return self.server.submit(kind, body, deadline)

    def call(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> Response:
        """Submit and wait for the response."""
        return self.submit(kind, body, deadline).result(self.timeout)

    def burst(
        self,
        requests: Iterable[tuple[str, Mapping[str, Any]]],
        deadline: float | None = None,
    ) -> list[Response]:
        """Submit a whole burst before collecting any response — the
        concurrency that gives the broker something to micro-batch."""
        pending: Sequence[PendingResponse] = [
            self.submit(kind, body, deadline) for kind, body in requests
        ]
        end = time.monotonic() + self.timeout
        out: list[Response] = []
        for p in pending:
            remaining = max(end - time.monotonic(), 0.001)
            out.append(p.result(remaining))
        return out

    # -- application conveniences -------------------------------------------
    def knn(
        self, x: float, y: float, z: float, deadline: float | None = None
    ) -> Response:
        """k nearest neighbours of the query point."""
        return self.call("knn", {"x": x, "y": y, "z": z}, deadline)

    def vmscope(self, query: str = "large", deadline: float | None = None) -> Response:
        """One virtual-microscope region query (preset name)."""
        return self.call("vmscope", {"query": query}, deadline)

    def stats(self) -> dict[str, object]:
        """The server's metrics snapshot (the ``stats`` request type)."""
        response = self.call(STATS_KIND)
        if not response.ok:  # pragma: no cover - stats never hits a pipeline
            raise RuntimeError(f"stats request failed: {response.error}")
        assert isinstance(response.value, dict)
        return response.value
