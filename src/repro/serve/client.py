"""The client surface: one protocol, two transports.

:class:`Client` is the contract every way of talking to a
:class:`~repro.serve.server.PipelineServer` satisfies — ``submit`` /
``call`` / ``burst`` / ``stats`` / ``drain`` / ``close`` plus
context-manager lifecycle.  Two implementations ship:

* :class:`LocalClient` — the transport is a function call into an
  in-process server; keeps the serving semantics (admission, batching,
  deadlines, shedding) testable without a network stack.
* :class:`RemoteClient` — the same surface over one TCP connection
  (:mod:`repro.serve.transport`), for clients on other hosts.  Requests
  are encoded with :meth:`Request.to_wire`, correlated by client-side
  id, and resolved by a reader thread; the server end feeds the exact
  same admission → micro-batch → plan-cache → warm-engine path as a
  local call.

Code written against :class:`Client` runs unchanged on either — the
conformance suite in ``tests/test_transport.py`` executes the same tests
against both via a fixture parameter.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

from .requests import (
    STATS_KIND,
    PendingResponse,
    Request,
    Response,
    SchemaVersionError,
    WireFormatError,
)
from .server import PipelineServer, ServerClosed


@runtime_checkable
class Client(Protocol):
    """What it means to be a serving client, regardless of transport."""

    def submit(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> PendingResponse:  # pragma: no cover - protocol
        ...

    def call(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> Response:  # pragma: no cover - protocol
        ...

    def stats(self, deep: bool = False) -> dict[str, object]:
        ...  # pragma: no cover - protocol

    def drain(self, timeout: float | None = None) -> list[Response]:
        ...  # pragma: no cover - protocol

    def close(self) -> None:  # pragma: no cover - protocol
        ...

    def __enter__(self) -> "Client":  # pragma: no cover - protocol
        ...

    def __exit__(self, *exc: Any) -> None:  # pragma: no cover - protocol
        ...


class BaseClient:
    """Everything a client is *except* how a request reaches the server.

    Subclasses implement :meth:`submit` (returning a
    :class:`PendingResponse` and registering it via :meth:`_track`) and
    optionally :meth:`close`; the blocking/pipelined helpers, outstanding
    bookkeeping, and context-manager lifecycle are shared."""

    def __init__(self, timeout: float = 120.0) -> None:
        self.timeout = timeout
        self._outstanding: list[PendingResponse] = []
        self._track_lock = threading.Lock()

    # -- transport hooks -----------------------------------------------------
    def submit(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> PendingResponse:
        raise NotImplementedError

    def close(self) -> None:
        """Release the transport (no-op for in-process clients)."""

    # -- shared surface ------------------------------------------------------
    def call(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> Response:
        """Submit and wait for the response."""
        return self.submit(kind, body, deadline).result(self.timeout)

    def burst(
        self,
        requests: Iterable[tuple[str, Mapping[str, Any]]],
        deadline: float | None = None,
    ) -> list[Response]:
        """Submit a whole burst before collecting any response — the
        concurrency that gives the broker something to micro-batch."""
        pending = [self.submit(kind, body, deadline) for kind, body in requests]
        end = time.monotonic() + self.timeout
        out: list[Response] = []
        for p in pending:
            remaining = max(end - time.monotonic(), 0.001)
            out.append(p.result(remaining))
        return out

    def drain(self, timeout: float | None = None) -> list[Response]:
        """Wait for every outstanding submitted request; returns their
        responses (in submission order) and forgets them."""
        with self._track_lock:
            pending, self._outstanding = self._outstanding, []
        end = time.monotonic() + (timeout if timeout is not None else self.timeout)
        return [
            p.result(max(end - time.monotonic(), 0.001)) for p in pending
        ]

    # -- application conveniences -------------------------------------------
    def knn(
        self, x: float, y: float, z: float, deadline: float | None = None
    ) -> Response:
        """k nearest neighbours of the query point."""
        return self.call("knn", {"x": x, "y": y, "z": z}, deadline)

    def vmscope(self, query: str = "large", deadline: float | None = None) -> Response:
        """One virtual-microscope region query (preset name)."""
        return self.call("vmscope", {"query": query}, deadline)

    def stats(self, deep: bool = False) -> dict[str, object]:
        """The server's metrics snapshot (the ``stats`` request type).
        ``deep=True`` adds the windowed registry view — per-kind and
        per-stage latency percentiles over the rolling 1 s / 10 s / 60 s
        windows, rates, and gauge maxima."""
        response = self.call(STATS_KIND, {"deep": True} if deep else None)
        if not response.ok:
            raise RuntimeError(f"stats request failed: {response.error}")
        assert isinstance(response.value, dict)
        return response.value

    def prometheus(self) -> str:
        """The server's metrics as Prometheus text exposition (the
        ``stats`` request type with ``format="prometheus"``)."""
        response = self.call(STATS_KIND, {"format": "prometheus"})
        if not response.ok:
            raise RuntimeError(f"stats request failed: {response.error}")
        assert isinstance(response.value, str)
        return response.value

    # -- bookkeeping / lifecycle ---------------------------------------------
    def _track(self, pending: PendingResponse) -> PendingResponse:
        with self._track_lock:
            # resolved futures cost nothing to keep briefly; prune lazily
            self._outstanding = [p for p in self._outstanding if not p.done()]
            self._outstanding.append(pending)
        return pending

    def __enter__(self):
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class LocalClient(BaseClient):
    """Blocking + pipelined request helpers over one in-process server."""

    def __init__(self, server: PipelineServer, timeout: float = 120.0) -> None:
        super().__init__(timeout)
        self.server = server

    def submit(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> PendingResponse:
        """Fire one request without waiting (pipelined clients)."""
        return self._track(self.server.submit(kind, body, deadline))


class RemoteClient(BaseClient):
    """``LocalClient``'s surface over a socket, call for call.

    Connects to a :class:`~repro.serve.transport.TransportListener`,
    reads the server's hello (service names, frame cap), and correlates
    responses to in-flight requests by client-side request id.  Unknown
    request kinds fail fast locally, exactly like ``LocalClient``;
    admission rejections come back as ordinary ``status="rejected"``
    responses with their ``retry_after`` hint."""

    def __init__(
        self,
        address: str | tuple[str, int],
        timeout: float = 120.0,
        connect_timeout: float = 10.0,
    ) -> None:
        super().__init__(timeout)
        from .transport import (
            DEFAULT_MAX_FRAME,
            T_HELLO,
            parse_address,
            read_frame,
        )

        self.address = parse_address(address)
        self._sock = socket.create_connection(self.address, timeout=connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._wlock = threading.Lock()
        self._pending: dict[int, PendingResponse] = {}
        self._plock = threading.Lock()
        self._closed = False
        try:
            hello = read_frame(self._rfile, DEFAULT_MAX_FRAME)
        except (OSError, RuntimeError, ValueError):
            self._sock.close()
            raise
        if hello is None or hello[0] != T_HELLO:
            self._sock.close()
            raise ConnectionError(
                f"no server hello from {self.address[0]}:{self.address[1]} "
                "(is a TransportListener on that port?)"
            )
        _ftype, header, _segments, _nbytes = hello
        self.services: tuple[str, ...] = tuple(header.get("services", ()))
        self.max_frame: int = int(header.get("max_frame", DEFAULT_MAX_FRAME))
        self._sock.settimeout(None)  # the reader thread blocks indefinitely
        self._reader = threading.Thread(
            target=self._read_loop, name="serve-remote-reader", daemon=True
        )
        self._reader.start()

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> PendingResponse:
        """Fire one request without waiting (pipelined clients)."""
        from .transport import T_REQUEST, encode_frame, frame_overhead

        if self.services and kind not in self.services:
            known = ", ".join(sorted(set(self.services) - {STATS_KIND}))
            raise ValueError(f"unknown request kind {kind!r}; services: {known}")
        if self._closed:
            raise ServerClosed("remote connection is closed")
        request = Request(
            kind=kind,
            body=dict(body or {}),
            deadline=time.monotonic() + deadline if deadline is not None else None,
        )
        header, segments = request.to_wire()
        frame = encode_frame(T_REQUEST, header, segments)
        # fail oversized requests locally: server-side FrameTooLarge comes
        # back with cid=None, which would spuriously fail every other
        # request in flight on this connection
        payload = len(frame) - frame_overhead(len(segments))
        if payload > self.max_frame:
            raise WireFormatError(
                f"request payload of {payload} bytes exceeds the server's "
                f"{self.max_frame}-byte frame cap"
            )
        pending = PendingResponse(request)
        with self._plock:
            self._pending[request.id] = pending
        try:
            with self._wlock:
                self._sock.sendall(frame)
        except OSError as exc:
            with self._plock:
                self._pending.pop(request.id, None)
            self._fail_outstanding(f"connection lost: {exc}")
            raise ServerClosed(f"remote connection lost: {exc}") from exc
        return self._track(pending)

    # -- response plumbing ---------------------------------------------------
    def _read_loop(self) -> None:
        from .transport import T_ERROR, T_RESPONSE, read_frame

        reason = "connection closed by server"
        while True:
            try:
                frame = read_frame(self._rfile, self.max_frame)
            except (ConnectionError, OSError, RuntimeError, ValueError) as exc:
                reason = f"transport failure: {exc}"
                break
            if frame is None:
                break
            ftype, header, segments, _nbytes = frame
            if ftype not in (T_RESPONSE, T_ERROR):
                continue
            try:
                response = Response.from_wire(header, segments)
            except (SchemaVersionError, WireFormatError) as exc:
                reason = f"undecodable response: {exc}"
                break
            cid = header.get("cid")
            if cid is None:
                # wire-level error the server couldn't attribute: fail
                # everything in flight with its message
                self._fail_outstanding(response.error or "transport error")
                continue
            with self._plock:
                pending = self._pending.pop(cid, None)
            if pending is not None:
                pending.resolve(response)
        self._fail_outstanding(reason)

    def _fail_outstanding(self, reason: str) -> None:
        with self._plock:
            stranded = list(self._pending.values())
            self._pending.clear()
        for pending in stranded:
            pending.resolve(
                Response(
                    id=pending.request.id,
                    kind=pending.request.kind,
                    status="error",
                    error=reason,
                    latency=time.monotonic() - pending.request.t_submit,
                )
            )

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Close this connection (the server keeps serving others)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass
        if self._reader.is_alive():
            self._reader.join(timeout=5.0)
        self._fail_outstanding("client closed")
