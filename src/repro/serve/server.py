"""The pipeline server: compile once, keep it warm, multiplex requests.

:class:`PipelineServer` turns the one-shot compiler driver into a
long-running service.  Lifecycle::

    server = PipelineServer([make_knn_service(), make_vmscope_service()],
                            ServerOptions(admission="reject", max_batch=16))
    server.start()
    pending = server.submit("knn", {"x": 0.2, "y": 0.4, "z": 0.6})
    response = pending.result(timeout=30)
    server.stop()          # graceful drain, then shutdown

One dispatcher thread pulls micro-batches off the
:class:`~repro.serve.broker.AdmissionQueue`, groups compatible requests
(equal :class:`~repro.serve.requests.ServicePlan` ``group_key``) into
single pipeline executions on the warm
:class:`~repro.serve.session.SessionPool`, and demultiplexes each
execution's result to every member request's future.  Where a service
opts into **request fusion** (``ServicePlan.fuse_key``), groups with
*distinct* params additionally merge into one lane-batched execution
(capped by ``ServerOptions.max_fuse_lanes``), with per-lane demux of
values and errors — a micro-batch of 32 distinct knn queries becomes
one engine run instead of 32.  ``stats`` requests are answered from
:class:`~repro.serve.metrics.ServerMetrics` without touching a
pipeline.

Admission control, load shedding, per-request deadlines, and graceful
drain are the server's job; retry-on-fault inside an execution is the
engine's (``ServerOptions.engine_options.retry`` applies per batch).
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..datacutter.engine import EngineOptions
from .broker import AdmissionQueue
from .metrics import ServerMetrics
from .plancache import PlanCache
from .requests import (
    STATS_KIND,
    PendingResponse,
    Request,
    Response,
    Service,
    ServicePlan,
)
from .session import SessionPool


@dataclass(slots=True)
class ServerOptions:
    """Everything that configures one server, alongside EngineOptions."""

    #: run configuration for every pipeline execution (engine choice,
    #: retry policy, queue capacities, ...)
    engine_options: EngineOptions = field(default_factory=EngineOptions)
    #: bound of the admission queue (pending requests)
    max_queue: int = 64
    #: full-queue policy: "block" | "reject" | "shed-oldest"
    admission: str = "block"
    #: cap on how long a blocked submitter waits (None = forever)
    block_timeout: float | None = None
    #: micro-batch budget: at most this many requests per dispatch
    max_batch: int = 16
    #: seconds the batcher waits for followers after the first request
    batch_deadline: float = 0.005
    #: default per-request deadline (seconds from admission; None = none)
    default_deadline: float | None = None
    #: seconds stop(drain=True) lets the dispatcher finish queued work
    drain_timeout: float = 30.0
    #: LRU capacity of the compilation plan cache
    plan_cache_capacity: int = 64
    #: cap on one wire frame's variable part (header + binary segments);
    #: oversized frames are discarded and answered with a structured error
    max_frame_bytes: int = 64 * 1024 * 1024
    #: per-connection bound on unanswered wire requests (flow control:
    #: a full bound stops the connection's reader, TCP backpressures)
    max_inflight: int = 64
    #: fuse requests with *distinct* params into one lane-batched
    #: execution when the service opts in (``ServicePlan.fuse_key``);
    #: off = today's equal-``group_key`` coalescing only
    fuse: bool = True
    #: cap on lanes per fused execution; wider fusion groups are chunked
    max_fuse_lanes: int = 32
    #: record per-request stage spans and link engine spans to serving
    #: executions (the distributed-tracing surface); counters and
    #: windowed histograms are always on regardless
    trace_requests: bool = True
    #: keep stage/request spans for one request in every N (1 = all);
    #: thins the exported trace under heavy load, never the stats
    trace_sample: int = 1
    #: per-event-class retention of the bounded metrics trace
    #: (None = unbounded, the pre-rotation behaviour)
    trace_retention: int | None = 4096

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.admission not in AdmissionQueue.POLICIES:
            raise ValueError(
                f"unknown admission policy {self.admission!r}; choose from "
                f"{AdmissionQueue.POLICIES}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_deadline < 0:
            raise ValueError(
                f"batch_deadline must be >= 0, got {self.batch_deadline}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be > 0 or None, got {self.default_deadline}"
            )
        if self.drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}"
            )
        if self.plan_cache_capacity < 1:
            raise ValueError(
                f"plan_cache_capacity must be >= 1, got {self.plan_cache_capacity}"
            )
        if self.max_frame_bytes < 1024:
            raise ValueError(
                f"max_frame_bytes must be >= 1024, got {self.max_frame_bytes}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_fuse_lanes < 1:
            raise ValueError(
                f"max_fuse_lanes must be >= 1, got {self.max_fuse_lanes}"
            )
        if self.trace_sample < 1:
            raise ValueError(
                f"trace_sample must be >= 1, got {self.trace_sample}"
            )
        if self.trace_retention is not None and self.trace_retention < 1:
            raise ValueError(
                f"trace_retention must be >= 1 or None, got {self.trace_retention}"
            )

    def replace(self, **changes: Any) -> "ServerOptions":
        import dataclasses

        return dataclasses.replace(self, **changes)


class ServerClosed(RuntimeError):
    """Submitted to a server that is not accepting requests."""


class PipelineServer:
    """A persistent serving front-end over warm compiled pipelines."""

    def __init__(
        self,
        services: Sequence[Service],
        options: ServerOptions | None = None,
    ) -> None:
        self.options = options if options is not None else ServerOptions()
        self.services: dict[str, Service] = {}
        for service in services:
            if service.name in self.services or service.name == STATS_KIND:
                raise ValueError(f"duplicate or reserved service {service.name!r}")
            self.services[service.name] = service
        self.metrics = ServerMetrics(
            retention=self.options.trace_retention,
            sample=self.options.trace_sample,
            trace_stages=self.options.trace_requests,
        )
        self.cache = PlanCache(self.options.plan_cache_capacity)
        engine_options = self.options.engine_options
        if self.options.trace_requests:
            # tee: the caller's own collector (if any) still sees every
            # engine event; the tap additionally stamps spans with the
            # current serving execution and folds them into the metrics
            # trace, joining filter spans to the requests they answer
            engine_options = engine_options.replace(
                trace=self.metrics.engine_tap(downstream=engine_options.trace)
            )
        self.pool = SessionPool(engine_options, self.cache)
        self.queue = AdmissionQueue(
            capacity=self.options.max_queue,
            policy=self.options.admission,
            block_timeout=self.options.block_timeout,
        )
        self._dispatcher: threading.Thread | None = None
        self._stop = threading.Event()
        self._draining = False
        self._listener: Any = None
        #: test hook called with each group's plan just before execution;
        #: lets deadline tests inject a dispatch stall deterministically
        self._before_execute: Any = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "PipelineServer":
        if self._dispatcher is not None:
            raise RuntimeError("server already started")
        self.metrics.trace.note(
            engine=self.options.engine_options.engine,
            services=sorted(self.services),
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down: close admissions, optionally drain queued work.

        With ``drain=True`` (the default) the dispatcher keeps serving
        already-admitted requests for up to ``drain_timeout`` seconds;
        anything still pending afterwards — or everything, with
        ``drain=False`` — resolves with status ``"shutdown"``."""
        if self._dispatcher is None:
            return
        if self._listener is not None:
            # stop remote admissions before local ones: no new frames
            # race the drain
            self._listener.close()
            self._listener = None
        self._draining = drain
        self.queue.close()
        if not drain:
            self._stop.set()
        self._dispatcher.join(
            timeout=self.options.drain_timeout if drain else 5.0
        )
        self._stop.set()
        if self._dispatcher.is_alive():  # drain timed out; force the exit
            self._dispatcher.join(timeout=5.0)
        self._dispatcher = None
        for pending in self.queue.drain():
            self._finish(pending, status="shutdown", error="server stopped")
        self.pool.close()

    @property
    def running(self) -> bool:
        return self._dispatcher is not None and self._dispatcher.is_alive()

    def listen(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int | None = None,
        max_inflight: int | None = None,
    ) -> tuple[str, int]:
        """Open the socket transport: accept remote clients on
        ``host:port`` (``port=0`` picks a free one) and feed their
        requests into the same admission queue local clients use.
        Returns the bound ``(host, port)``; ``stop()`` closes it."""
        from .transport import TransportListener

        if self._dispatcher is None:
            raise RuntimeError("start() the server before listen()")
        if self._listener is not None:
            raise RuntimeError(f"already listening on {self._listener.address}")
        self._listener = TransportListener(
            self, host, port, max_frame=max_frame, max_inflight=max_inflight
        ).start()
        self.metrics.trace.note(listen="%s:%s" % self._listener.address)
        return self._listener.address

    def __enter__(self) -> "PipelineServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- client surface ------------------------------------------------------
    def submit(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
    ) -> PendingResponse:
        """Admit one request; returns its future.

        ``deadline`` is seconds from now (falling back to
        ``ServerOptions.default_deadline``).  Admission-control outcomes
        (rejected / shed) resolve the future immediately with the
        corresponding status — ``submit`` itself only raises for unknown
        kinds or a stopped server."""
        rel = deadline if deadline is not None else self.options.default_deadline
        return self.submit_request(
            Request(
                kind=kind,
                body=dict(body or {}),
                deadline=time.monotonic() + rel if rel is not None else None,
            )
        )

    def submit_request(self, request: Request) -> PendingResponse:
        """Admit one already-built :class:`Request` — the single entry
        point shared by local calls and the socket transport (a decoded
        wire frame lands here, not on a parallel code path)."""
        if request.kind != STATS_KIND and request.kind not in self.services:
            known = ", ".join(sorted(self.services))
            raise ValueError(
                f"unknown request kind {request.kind!r}; services: {known}"
            )
        if self._dispatcher is None or self.queue.closed:
            raise ServerClosed("server is not accepting requests")
        if (
            request.deadline is None
            and self.options.default_deadline is not None
        ):
            request.deadline = (
                request.t_submit + self.options.default_deadline
            )
        pending = PendingResponse(request)
        admitted, shed, retry_after = self.queue.offer(pending)
        for victim in shed:
            self.metrics.record_shed()
            self._finish(
                victim,
                status="shed",
                error="load shed: queue full, shed-oldest policy",
            )
        if not admitted:
            self.metrics.record_rejected()
            self._finish(
                pending,
                status="rejected",
                error="admission queue full",
                retry_after=retry_after,
            )
            return pending
        self.metrics.record_admission(len(self.queue))
        pending.t_admitted = time.perf_counter()
        self._stage(pending, "admission", request.t_perf, pending.t_admitted)
        return pending

    def request(
        self,
        kind: str,
        body: Mapping[str, Any] | None = None,
        deadline: float | None = None,
        timeout: float | None = 60.0,
    ) -> Response:
        """Synchronous convenience: submit and wait."""
        return self.submit(kind, body, deadline).result(timeout)

    # -- dispatcher ----------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            batch = self.queue.collect_batch(
                self.options.max_batch, self.options.batch_deadline
            )
            if not batch:
                if self.queue.closed and len(self.queue) == 0:
                    return  # graceful drain complete
                continue
            self.metrics.record_dispatch(len(self.queue), len(batch))
            try:
                self._run_batch(batch)
            except Exception:  # noqa: BLE001 - keep serving
                # a dispatcher bug must not wedge every in-flight client
                detail = traceback.format_exc()
                for pending in batch:
                    if not pending.done():
                        self.metrics.record_error()
                        self._finish(pending, status="error", error=detail)

    def _stage(
        self,
        pending: PendingResponse,
        stage: str,
        t0: float,
        t1: float,
        execution: int | None = None,
    ) -> None:
        """One stage of one request's life — histogram always, linked
        span when request tracing is on."""
        request = pending.request
        self.metrics.record_stage(
            request.kind,
            stage,
            t0,
            t1,
            request_id=request.id if self.options.trace_requests else None,
            trace_id=request.trace_id,
            execution=execution,
        )

    def _run_batch(self, batch: list[PendingResponse]) -> None:
        """Serve one micro-batch: group compatible requests, fuse groups
        the service marks fusable, execute each unit once, demultiplex."""
        groups: dict[str, list[PendingResponse]] = {}
        plans: dict[str, ServicePlan] = {}
        now = time.monotonic()
        t_dequeued = time.perf_counter()
        for pending in batch:
            request = pending.request
            pending.t_dequeued = t_dequeued
            self._stage(
                pending,
                "queue",
                getattr(pending, "t_admitted", request.t_perf),
                t_dequeued,
            )
            if request.expired(now):
                self.metrics.record_expired()
                self._finish(
                    pending, status="expired", error="deadline exceeded in queue"
                )
                continue
            if request.kind == STATS_KIND:
                # body dispatch: {"deep": true} returns the windowed
                # registry view, {"format": "prometheus"} the text
                # exposition; default stays the flat snapshot
                body = request.body or {}
                if body.get("format") == "prometheus":
                    value: Any = self.metrics.render_prometheus()
                else:
                    value = self.stats(deep=bool(body.get("deep")))
                self._finish(
                    pending,
                    status="ok",
                    value=value,
                    batch_size=len(batch),
                    group_size=1,
                )
                continue
            try:
                plan = self.services[request.kind].plan(request.body)
            except Exception:  # noqa: BLE001 - bad request body
                self.metrics.record_error()
                self._finish(pending, status="error", error=traceback.format_exc())
                continue
            key = f"{request.kind}/{plan.group_key}"
            groups.setdefault(key, []).append(pending)
            plans[key] = plan

        # fusion pass: bucket coalesced groups by (service, fuse_key) where
        # the service opts in; everything else runs the classic one-group
        # path.  Each group keeps its identity — it becomes one *lane* of
        # the fused execution — so identical-param requests still coalesce
        # first and the lane count is the number of distinct param sets.
        solo: list[str] = []
        buckets: dict[tuple[str, str], list[str]] = {}
        for key in groups:
            plan = plans[key]
            if plan.fuse_key is None or plan.fuse is None:
                self.metrics.record_fuse_bypass("unsupported")
                solo.append(key)
            elif not self.options.fuse:
                self.metrics.record_fuse_bypass("disabled")
                solo.append(key)
            else:
                buckets.setdefault((plan.service, plan.fuse_key), []).append(key)

        fused_units: list[list[str]] = []
        for keys in buckets.values():
            # chunk wide buckets at the lane cap; a leftover chunk of one
            # group collapses back to plain coalescing
            for i in range(0, len(keys), self.options.max_fuse_lanes):
                chunk = keys[i : i + self.options.max_fuse_lanes]
                if len(chunk) == 1:
                    self.metrics.record_fuse_bypass("single-lane")
                    solo.append(chunk[0])
                else:
                    fused_units.append(chunk)

        for key in solo:
            self._execute_group(plans[key], groups[key], len(batch))
        for chunk in fused_units:
            self._execute_fused(
                [plans[key] for key in chunk],
                [groups[key] for key in chunk],
                len(batch),
            )

    def _sweep_expired(
        self, members: list[PendingResponse]
    ) -> list[PendingResponse]:
        """Deadlines re-checked *after* batch assembly and any stall,
        immediately before execution: a request that expired in the window
        between grouping and dispatch must not charge the plan cache or
        the engine, and must be counted as expired exactly once
        (record_expired here; record_request only bumps ``served`` for
        "ok", and _finish fires at most once per pending)."""
        now = time.monotonic()
        live: list[PendingResponse] = []
        for pending in members:
            if pending.request.expired(now):
                self.metrics.record_expired()
                self._finish(
                    pending,
                    status="expired",
                    error="deadline exceeded before execution",
                )
            else:
                live.append(pending)
        return live

    def _execute_group(
        self,
        plan: ServicePlan,
        members: list[PendingResponse],
        batch_size: int,
    ) -> None:
        """The classic path: one equal-``group_key`` group, one execution."""
        if self._before_execute is not None:
            self._before_execute(plan)  # test hook: injected dispatch stall
        members = self._sweep_expired(members)
        if not members:
            return  # nothing left to execute: no cache/engine charge
        self._run_group_swept(plan, members, batch_size)

    def _execute_fused(
        self,
        lane_plans: list[ServicePlan],
        lane_members: list[list[PendingResponse]],
        batch_size: int,
    ) -> None:
        """Fuse one bucket of distinct-param groups into a lane-batched
        plan, execute it once, and demux per-lane values and errors."""
        if self._before_execute is not None:
            self._before_execute(lane_plans[0])  # test hook: dispatch stall
        # sweep per lane: a lane whose every member expired during the
        # stall window is dropped from the fused run entirely — it is
        # neither executed nor charged
        live_plans: list[ServicePlan] = []
        live_members: list[list[PendingResponse]] = []
        for plan, members in zip(lane_plans, lane_members):
            members = self._sweep_expired(members)
            if members:
                live_plans.append(plan)
                live_members.append(members)
        if not live_plans:
            return
        if len(live_plans) == 1:
            # expiry collapsed the bucket to one param set: no fusion left
            self.metrics.record_fuse_bypass("single-lane")
            self._run_group_swept(live_plans[0], live_members[0], batch_size)
            return
        try:
            fused = live_plans[0].fuse(live_plans)
            if fused.extract_lane is None:
                raise TypeError(
                    f"fused plan for {fused.service!r} lacks extract_lane"
                )
        except Exception:  # noqa: BLE001 - combiner bug: degrade, don't fail
            self.metrics.record_fuse_bypass("fuse-error")
            for plan, members in zip(live_plans, live_members):
                self._run_group_swept(plan, members, batch_size)
            return
        lanes = len(live_plans)
        t0 = time.perf_counter()
        for members in live_members:
            for pending in members:
                self._stage(
                    pending,
                    "assemble",
                    getattr(pending, "t_dequeued", pending.request.t_perf),
                    t0,
                )
        seq = self.metrics.begin_execution()  # lanes share one execution
        try:
            run, cache_hit = self.pool.execute(fused)
        except Exception:  # noqa: BLE001 - whole fused run failed
            detail = traceback.format_exc()
            for members in live_members:
                for pending in members:
                    self.metrics.record_error()
                    self._finish(pending, status="error", error=detail)
            return
        finally:
            self.metrics.end_execution()
        t1 = time.perf_counter()
        self.metrics.record_execution(
            fused.service,
            t0,
            t1,
            sum(len(members) for members in live_members),
            cache_hit,
            lanes=lanes,
            seq=seq,
        )
        # per-request service time: the fused run did the work of `lanes`
        # separate executions, so each lane is charged a 1/lanes share
        self.queue.observe_service_time((t1 - t0) / lanes)
        for members in live_members:
            for pending in members:
                self._stage(pending, "execute", t0, t1, execution=seq)
        for lane, members in enumerate(live_members):
            t_lane0 = time.perf_counter()
            try:
                value = fused.extract_lane(run.payloads, lane)
            except Exception:  # noqa: BLE001 - errors only this lane
                detail = traceback.format_exc()
                for pending in members:
                    self.metrics.record_error()
                    self._finish(pending, status="error", error=detail)
                continue
            t_lane1 = time.perf_counter()
            for pending in members:
                self._stage(pending, "extract", t_lane0, t_lane1, execution=seq)
                self._finish(
                    pending,
                    status="ok",
                    value=value,
                    service_seconds=t1 - t0,
                    group_size=len(members),
                    batch_size=batch_size,
                    cache_hit=cache_hit,
                    fused_lanes=lanes,
                    execution=seq,
                )

    def _run_group_swept(
        self,
        plan: ServicePlan,
        members: list[PendingResponse],
        batch_size: int,
    ) -> None:
        """_execute_group minus the stall hook and deadline sweep — for
        members that already survived the fused path's sweep."""
        t0 = time.perf_counter()
        for pending in members:
            self._stage(
                pending,
                "assemble",
                getattr(pending, "t_dequeued", pending.request.t_perf),
                t0,
            )
        # the sole member's trace id rides on the engine spans; a shared
        # execution keeps only the execution-id link
        seq = self.metrics.begin_execution(
            members[0].request.trace_id if len(members) == 1 else None
        )
        try:
            run, cache_hit = self.pool.execute(plan)
        except Exception:  # noqa: BLE001 - per-group failure isolation
            detail = traceback.format_exc()
            for pending in members:
                self.metrics.record_error()
                self._finish(pending, status="error", error=detail)
            return
        finally:
            self.metrics.end_execution()
        t1 = time.perf_counter()
        self.metrics.record_execution(
            plan.service, t0, t1, len(members), cache_hit, seq=seq
        )
        self.queue.observe_service_time((t1 - t0) / max(len(members), 1))
        for pending in members:
            self._stage(pending, "execute", t0, t1, execution=seq)
        try:
            value = plan.extract(run.payloads)
        except Exception:  # noqa: BLE001 - per-group failure isolation
            detail = traceback.format_exc()
            for pending in members:
                self.metrics.record_error()
                self._finish(pending, status="error", error=detail)
            return
        t2 = time.perf_counter()
        for pending in members:
            self._stage(pending, "extract", t1, t2, execution=seq)
            self._finish(
                pending,
                status="ok",
                value=value,
                service_seconds=t1 - t0,
                group_size=len(members),
                batch_size=batch_size,
                cache_hit=cache_hit,
                execution=seq,
            )

    # -- helpers -------------------------------------------------------------
    def _finish(
        self,
        pending: PendingResponse,
        status: str,
        value: Any = None,
        error: str | None = None,
        service_seconds: float = 0.0,
        group_size: int = 0,
        batch_size: int = 0,
        cache_hit: bool = False,
        retry_after: float | None = None,
        fused_lanes: int = 0,
        execution: int | None = None,
    ) -> None:
        request = pending.request
        latency = time.monotonic() - request.t_submit
        self.metrics.record_request(
            request.kind,
            request.id,
            request.t_perf,
            status,
            trace_id=request.trace_id if self.options.trace_requests else None,
            execution=execution,
        )
        pending.resolve(
            Response(
                id=request.id,
                kind=request.kind,
                status=status,
                value=value,
                error=error,
                latency=latency,
                service_seconds=service_seconds,
                group_size=group_size,
                batch_size=batch_size,
                cache_hit=cache_hit,
                retry_after=retry_after,
                fused_lanes=fused_lanes,
                trace_id=request.trace_id,
            )
        )

    def stats(self, deep: bool = False) -> dict[str, object]:
        """The ``stats`` payload: serving counters, percentiles, cache.
        ``deep=True`` adds the full windowed registry view (per-kind and
        per-stage percentiles over the 1 s / 10 s / 60 s windows)."""
        snapshot = self.metrics.snapshot(deep=deep)
        snapshot["plan_cache"] = {
            "entries": len(self.cache),
            **self.cache.stats.as_dict(),
        }
        snapshot["queue_depth"] = len(self.queue)
        snapshot["engine"] = self.options.engine_options.engine
        snapshot["engine_runs"] = self.pool.session.runs
        if self._listener is not None:
            snapshot["transport"]["listen"] = "%s:%s" % self._listener.address
        return snapshot
