"""Compilation plan cache: compile once, serve forever.

A one-shot ``run`` pays the full parse → typecheck → analysis →
decomposition → codegen stack per invocation.  A server multiplexing many
small requests through warm pipelines must not: the compiled artifact is
a pure function of the *source program* and the *compilation context*, so
it can be keyed and reused across requests (the long-lived pipeline shape
of Pipeflow, arXiv:2202.00717; requests parameterize the dataflow rather
than rebuilding it, as in Parameterized Dataflow, arXiv:1610.08170).

The cache key (:meth:`PlanCache.key_for`) fingerprints everything that
changes what ``compile_source`` produces:

* the source text (SHA-256),
* the intrinsic registry (names, signatures, implementation identities),
* every compile-relevant :class:`~repro.core.compiler.CompileOptions`
  field — the decomposition environment (units/links), workload profile,
  op weights, objective, size hints, runtime classes, method costs, and
  the **resolved** codegen backend (``"auto"`` keys as whatever
  ``REPRO_BACKEND`` resolves it to, so a scalar-compiled entry is never
  served to a vector request),
* an explicit plan override and extra intrinsic implementations.

Execution-time fields (``engine``, ``engine_options``) stay *out* of the
key: they do not affect the compiled artifact, and one cached pipeline
serves both engines.

Entries are :class:`~repro.core.compiler.CompilationResult` objects,
shared by reference: they are immutable in practice (``pipeline.specs``
builds fresh filter instances per run), and callers must not mutate
them.  The cache is thread-safe and LRU-bounded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Protocol, runtime_checkable

from ..codegen.vectorize import resolve_backend
from ..core.compiler import CompilationResult, CompileOptions, compile_source
from ..decompose.plan import DecompositionPlan
from ..lang.intrinsics import IntrinsicRegistry


@runtime_checkable
class PlanCacheProtocol(Protocol):
    """What :func:`repro.core.compiler.compile_source` needs from a
    compilation cache (its ``cache=`` hook).

    :class:`PlanCache` below is the stock implementation; anything with
    the same three methods — a disk-spilling cache, a distributed one, a
    recording stub in tests — plugs in the same way.  The compiler
    itself stays import-independent of the serving subsystem and only
    references this protocol from its docstrings."""

    def key_for(
        self,
        source: str,
        registry: IntrinsicRegistry | None,
        options: CompileOptions,
        plan: DecompositionPlan | None = None,
        intrinsic_impls: dict[str, Callable] | None = None,
    ) -> str:  # pragma: no cover - protocol
        ...

    def get(self, key: str) -> CompilationResult | None:  # pragma: no cover
        ...

    def put(self, key: str, result: CompilationResult) -> None:  # pragma: no cover
        ...

#: CompileOptions fields that configure *execution*, not compilation —
#: excluded from the key so one cached pipeline serves any engine
_EXECUTION_FIELDS = frozenset({"engine", "engine_options"})


def _canon(value: Any) -> Any:
    """Canonical, order-insensitive, hashable form of a key component.

    Callables and classes key by qualified name — stable for everything
    the apps register (module-level functions, ``register_generated``
    classes whose names encode their parameters, e.g. ``KNN3`` /
    ``VImage96x96``); ad-hoc closures with identical qualnames would
    alias, which the source hash and profile fingerprint disambiguate in
    practice."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return (type(value).__name__, value)
    if isinstance(value, type):
        return ("type", value.__module__, value.__qualname__)
    if isinstance(value, dict):
        return ("dict", tuple(sorted((str(k), _canon(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canon(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canon(v)) for v in value)))
    if dataclasses.is_dataclass(value):
        return (
            type(value).__name__,
            tuple(
                (f.name, _canon(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if callable(value):
        return (
            "callable",
            getattr(value, "__module__", "?"),
            getattr(value, "__qualname__", repr(value)),
        )
    return ("repr", repr(value))


def _registry_fingerprint(registry: IntrinsicRegistry | None) -> Any:
    if registry is None:
        return None
    entries = []
    for intr in registry:
        entries.append(
            (
                intr.name,
                _canon(getattr(intr, "params", ())),
                _canon(getattr(intr, "ret", None)),
                _canon(getattr(intr, "fn", None)),
                _canon(getattr(intr, "batch_fn", None)),
                _canon(getattr(intr, "reads", ())),
                _canon(getattr(intr, "writes", ())),
            )
        )
    return tuple(sorted(entries))


def options_fingerprint(options: CompileOptions) -> Any:
    """Canonical form of the compile-relevant option fields."""
    parts = []
    for f in dataclasses.fields(options):
        if f.name in _EXECUTION_FIELDS:
            continue
        value = getattr(options, f.name)
        if f.name == "backend":
            # "auto" must key as whatever it resolves to right now, so a
            # REPRO_BACKEND flip cannot serve stale codegen
            value = resolve_backend(value)
        parts.append((f.name, _canon(value)))
    return tuple(parts)


@dataclasses.dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class PlanCache:
    """Thread-safe LRU cache of :class:`CompilationResult` objects.

    The stock :class:`PlanCacheProtocol` implementation — the hook
    :func:`repro.core.compiler.compile_source` accepts as ``cache=``
    (``key_for`` / ``get`` / ``put``); :meth:`compile` is the convenience
    wrapper the serving subsystem uses."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CompilationResult] = OrderedDict()
        self.stats = CacheStats()

    def key_for(
        self,
        source: str,
        registry: IntrinsicRegistry | None,
        options: CompileOptions,
        plan: DecompositionPlan | None = None,
        intrinsic_impls: dict[str, Callable] | None = None,
    ) -> str:
        """Deterministic key over everything that changes the compile."""
        material = repr(
            (
                ("source", hashlib.sha256(source.encode()).hexdigest()),
                ("registry", _registry_fingerprint(registry)),
                ("options", options_fingerprint(options)),
                ("plan", _canon(plan)),
                ("impls", _canon(intrinsic_impls or {})),
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def get(self, key: str) -> CompilationResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def put(self, key: str, result: CompilationResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def compile(
        self,
        source: str,
        registry: IntrinsicRegistry | None = None,
        options: CompileOptions | None = None,
        intrinsic_impls: dict[str, Callable] | None = None,
        plan: DecompositionPlan | None = None,
    ) -> tuple[CompilationResult, bool]:
        """``compile_source`` through the cache; returns (result, was_hit)."""
        if options is None:
            raise ValueError("CompileOptions (with a PipelineEnv) are required")
        key = self.key_for(
            source, registry, options, plan=plan, intrinsic_impls=intrinsic_impls
        )
        hit = self.get(key)
        if hit is not None:
            return hit, True
        result = compile_source(
            source, registry, options, intrinsic_impls=intrinsic_impls, plan=plan
        )
        self.put(key, result)
        return result, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
