"""Request broker: bounded admission queue and micro-batch assembly.

The broker is where heavy traffic meets a finite pipeline.  Its two
halves:

* **Admission control** (:class:`AdmissionQueue`) — a bounded FIFO of
  pending requests with a configurable full-queue policy:

  - ``"block"`` — the submitting client waits for space (classic
    backpressure; an optional timeout turns a long wait into a reject);
  - ``"reject"`` — fail fast with a ``retry_after`` hint derived from the
    queue depth and the observed service rate;
  - ``"shed-oldest"`` — admit the newcomer and drop the *oldest* waiting
    request (under overload the oldest is the likeliest to be past its
    deadline anyway — shedding it preserves freshness, the classic
    load-shedding trade).

* **Micro-batching** (:meth:`AdmissionQueue.collect_batch`) — the
  dispatcher takes one request, then keeps gathering until the batch
  budget (``max_batch``) or the batching deadline elapses.  Batching
  amortizes dispatch overhead and, more importantly, lets the dispatcher
  group compatible requests into single pipeline executions.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from .requests import PendingResponse


class AdmissionQueue:
    """Bounded request queue with a pluggable overload policy."""

    POLICIES = ("block", "reject", "shed-oldest")

    def __init__(
        self,
        capacity: int = 64,
        policy: str = "block",
        block_timeout: float | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"choose from {self.POLICIES}"
            )
        if block_timeout is not None and block_timeout <= 0:
            raise ValueError(
                f"block_timeout must be > 0 or None, got {block_timeout}"
            )
        self.capacity = capacity
        self.policy = policy
        self.block_timeout = block_timeout
        self._items: deque[PendingResponse] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        #: exponentially-weighted seconds per served request, maintained by
        #: the server; drives the ``retry_after`` hint
        self.ewma_service_seconds = 0.05

    # -- admission ----------------------------------------------------------
    def offer(
        self, pending: PendingResponse
    ) -> tuple[bool, list[PendingResponse], float | None]:
        """Try to admit one request.

        Returns ``(admitted, shed, retry_after)``: ``shed`` lists requests
        evicted to make room (policy ``"shed-oldest"``; the caller owns
        responding to them), ``retry_after`` is the backoff hint when not
        admitted."""
        with self._lock:
            if self._closed:
                return False, [], None
            if len(self._items) < self.capacity:
                self._items.append(pending)
                self._not_empty.notify()
                return True, [], None
            if self.policy == "reject":
                return False, [], self.retry_after_hint()
            if self.policy == "shed-oldest":
                shed = [self._items.popleft()]
                self._items.append(pending)
                self._not_empty.notify()
                return True, shed, None
            # "block": wait for space (or closure / timeout)
            end = (
                time.monotonic() + self.block_timeout
                if self.block_timeout is not None
                else None
            )
            while len(self._items) >= self.capacity and not self._closed:
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False, [], self.retry_after_hint()
                if not self._not_full.wait(timeout=remaining or 0.5):
                    if end is not None:
                        return False, [], self.retry_after_hint()
            if self._closed:
                return False, [], None
            self._items.append(pending)
            self._not_empty.notify()
            return True, [], None

    def retry_after_hint(self) -> float:
        """Backoff suggestion: time to drain the current queue at the
        observed service rate."""
        with_depth = max(len(self._items), 1)
        return round(with_depth * self.ewma_service_seconds, 4)

    def observe_service_time(self, seconds: float, alpha: float = 0.2) -> None:
        self.ewma_service_seconds = (
            (1 - alpha) * self.ewma_service_seconds + alpha * seconds
        )

    # -- dispatch -----------------------------------------------------------
    def take(self, timeout: float | None = None) -> PendingResponse | None:
        """Pop the oldest request; None on timeout or when closed-and-empty."""
        with self._lock:
            end = time.monotonic() + timeout if timeout is not None else None
            while not self._items:
                if self._closed:
                    return None
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(timeout=remaining)
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def collect_batch(
        self, max_batch: int, batch_deadline: float, poll: float = 0.1
    ) -> list[PendingResponse]:
        """Assemble one micro-batch.

        Blocks up to ``poll`` seconds for the first request (so a stopping
        server notices promptly), then gathers until ``max_batch`` requests
        or ``batch_deadline`` seconds from the first arrival — the
        size/deadline budget that trades a little head-of-line latency for
        batch occupancy."""
        first = self.take(timeout=poll)
        if first is None:
            return []
        batch = [first]
        t_end = time.monotonic() + batch_deadline
        while len(batch) < max_batch:
            remaining = t_end - time.monotonic()
            if remaining <= 0:
                break
            nxt = self.take(timeout=remaining)
            if nxt is None:
                break
            batch.append(nxt)
        return batch

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Refuse new admissions; queued requests remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self) -> list[PendingResponse]:
        """Remove and return everything still queued."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
            return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
