"""The serving metrics surface: bounded trace + windowed time series.

Two complementary sinks fed by the server, both bounded:

* a :class:`~repro.datacutter.obs.BoundedTrace` holding the most recent
  spans for export — per-request *stage* spans (``admission`` →
  ``queue`` → ``assemble`` → ``execute`` → ``extract`` → ``write``),
  one ``request`` span per client request, one ``execute`` span per
  pipeline execution, and (via :class:`EngineSpanTap`) the engine-level
  filter spans of every serving execution, all stamped with the
  request's ``trace_id`` and the execution sequence number so the Chrome
  exporter can draw one request crossing the socket into filter-level
  pipeline spans.  Retention rotates; ``dropped_spans`` counts the loss.
* a :class:`~repro.serve.timeseries.MetricsRegistry` of windowed
  counters, gauges, and log-bucket latency histograms — the source for
  ``stats`` percentiles (O(buckets), never a rescan of history), for the
  Prometheus text exposition, and for the :meth:`ServerMetrics.window`
  signal the autoscale loop consumes.

Everything still exports through the stock JSON-lines exporter
(:func:`~repro.datacutter.obs.write_jsonl`) and round-trips through
``read_jsonl`` — the `serve` CLI's ``-o`` artifact is an ordinary
observability trace, and :meth:`ServerMetrics.snapshot` is the payload
of the ``stats`` request type.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..datacutter.obs import BoundedTrace, Trace, write_jsonl
from ..datacutter.obs.trace import BlockedSpan, QueueSample, Span, TraceCollector
from .timeseries import DEFAULT_WINDOWS, MetricsRegistry

#: synthetic stream names for the serving gauges
QUEUE_STREAM = "serve.queue"
BATCH_STREAM = "serve.batch"
CONN_STREAM = "serve.connections"

#: default span retention (per event class) of the bounded trace
DEFAULT_RETENTION = 4096


class EngineSpanTap:
    """Trace collector that links engine spans to serving executions.

    Installed as ``EngineOptions.trace`` by the server: while a serving
    execution is running (between :meth:`ServerMetrics.begin_execution`
    and :meth:`ServerMetrics.end_execution`), every engine span is
    stamped with that execution's sequence number and trace id and
    recorded into the bounded metrics trace — joining filter-level
    pipeline spans to the request that caused them.  An optional
    ``downstream`` collector (the caller's own ``EngineOptions.trace``)
    receives every event unmodified.

    The dispatcher runs executions one at a time on one thread, and the
    process engine replays worker spans inside ``run()``, so the
    current-execution stamp is stable for the duration of each run."""

    def __init__(
        self, metrics: "ServerMetrics", downstream: TraceCollector | None = None
    ) -> None:
        self._metrics = metrics
        self._downstream = downstream

    def record_span(self, span: Span) -> None:
        if self._downstream is not None:
            self._downstream.record_span(span)
        execution, trace_id = self._metrics.current_execution()
        if execution is not None and span.execution is None:
            span = Span(
                span.filter,
                span.copy,
                span.phase,
                span.packet,
                span.t0,
                span.t1,
                trace=trace_id,
                execution=execution,
            )
        self._metrics.trace.record_span(span)

    def record_queue(self, sample: QueueSample) -> None:
        if self._downstream is not None:
            self._downstream.record_queue(sample)
        self._metrics.trace.record_queue(sample)

    def record_blocked(self, blocked: BlockedSpan) -> None:
        if self._downstream is not None:
            self._downstream.record_blocked(blocked)
        self._metrics.trace.record_blocked(blocked)

    def note(self, **meta: Any) -> None:
        if self._downstream is not None:
            self._downstream.note(**meta)
        self._metrics.trace.note(**{f"engine.{k}": v for k, v in meta.items()})


class ServerMetrics:
    """Thread-safe serving telemetry: bounded trace + windowed registry.

    ``retention`` caps the trace's per-class event lists (``None`` =
    unbounded, the old behaviour); ``sample`` keeps stage/request spans
    for one request in every ``sample`` (counters and histograms always
    see everything — sampling only thins the exported trace);
    ``trace_stages=False`` drops per-request stage spans entirely while
    keeping the stage histograms; ``clock`` feeds the registry's rolling
    windows and is injectable for deterministic tests."""

    def __init__(
        self,
        retention: int | None = DEFAULT_RETENTION,
        sample: int = 1,
        trace_stages: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.trace_stages = trace_stages
        self.trace: BoundedTrace = BoundedTrace(
            max_spans=retention,
            max_queue_samples=retention,
            max_blocked=retention if retention is None else max(retention // 4, 1),
        )
        self.trace.note(role="serve")
        self.registry = MetricsRegistry(clock=clock)
        self.sample = sample
        self._lock = threading.Lock()
        self._current: tuple[int | None, str | None] = (None, None)
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.expired = 0
        self.errors = 0
        self.served = 0
        self.executions = 0
        self.cache_hits = 0
        self._occupancy_sum = 0
        self._batches = 0
        # request fusion (lane-batched executions over distinct params)
        self.fused_executions = 0
        self.fused_lanes = 0
        self._group_sum = 0
        self.fuse_bypass: dict[str, int] = {}
        # transport counters (socket connections and wire frames)
        self.connections_opened = 0
        self.connections_closed = 0
        self.connections_active = 0
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.decode_errors = 0
        self.disconnects = 0

    # -- recording ----------------------------------------------------------
    def sampled(self, request_id: int) -> bool:
        """Whether this request's spans are retained in the trace."""
        return request_id % self.sample == 0

    def record_admission(self, depth: int) -> None:
        with self._lock:
            self.admitted += 1
        self.registry.inc("admitted")
        self.registry.set_gauge("queue_depth", depth)
        self.trace.record_queue(
            QueueSample(QUEUE_STREAM, time.perf_counter(), depth, "put")
        )

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1
        self.registry.inc("rejected")

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1
        self.registry.inc("shed")

    def record_expired(self) -> None:
        with self._lock:
            self.expired += 1
        self.registry.inc("expired")

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1
        self.registry.inc("errors")

    def record_dispatch(self, depth: int, batch_size: int) -> None:
        """One micro-batch left the queue."""
        now = time.perf_counter()
        self.trace.record_queue(QueueSample(QUEUE_STREAM, now, depth, "get"))
        self.trace.record_queue(QueueSample(BATCH_STREAM, now, batch_size, "get"))
        self.registry.set_gauge("queue_depth", depth)
        self.registry.set_gauge("batch_size", batch_size)
        self.registry.inc("batches")
        self.registry.inc("batch_requests", batch_size)
        with self._lock:
            self._occupancy_sum += batch_size
            self._batches += 1

    def record_stage(
        self,
        kind: str,
        stage: str,
        t0: float,
        t1: float,
        request_id: int | None = None,
        trace_id: str | None = None,
        execution: int | None = None,
    ) -> None:
        """One stage of one request's life (``admission`` / ``queue`` /
        ``assemble`` / ``execute`` / ``extract`` / ``write``): always
        feeds the per-stage latency histogram; additionally records a
        linked span when ``request_id`` is given and sampled (callers
        pass ``None`` to keep the histogram but skip the span)."""
        self.registry.observe(
            "stage", max(t1 - t0, 0.0), labels={"kind": kind, "stage": stage}
        )
        if (
            self.trace_stages
            and request_id is not None
            and self.sampled(request_id)
        ):
            self.trace.record_span(
                Span(
                    f"request.{kind}",
                    0,
                    stage,
                    request_id,
                    t0,
                    t1,
                    trace=trace_id,
                    execution=execution,
                )
            )

    # -- executions ---------------------------------------------------------
    def begin_execution(self, trace_id: str | None = None) -> int:
        """Allocate the next execution sequence number and mark it
        current, so :class:`EngineSpanTap` stamps the engine spans of the
        upcoming run.  Pair with :meth:`end_execution`."""
        with self._lock:
            self.executions += 1
            seq = self.executions
        self._current = (seq, trace_id)
        return seq

    def end_execution(self) -> None:
        self._current = (None, None)

    def current_execution(self) -> tuple[int | None, str | None]:
        return self._current

    def record_execution(
        self,
        kind: str,
        t0: float,
        t1: float,
        group_size: int,
        cache_hit: bool,
        lanes: int = 1,
        seq: int | None = None,
    ) -> int:
        """One pipeline execution served ``group_size`` coalesced requests
        across ``lanes`` fused lanes (1 = not fused); returns the execution
        sequence number (allocated here unless ``seq`` carries the one
        :meth:`begin_execution` handed out)."""
        if seq is None:
            with self._lock:
                self.executions += 1
                seq = self.executions
        with self._lock:
            if cache_hit:
                self.cache_hits += 1
            self._group_sum += group_size
            if lanes > 1:
                self.fused_executions += 1
                self.fused_lanes += lanes
        self.registry.inc(
            "executions", labels={"cache": "hit" if cache_hit else "miss"}
        )
        self.registry.observe("execution", max(t1 - t0, 0.0), labels={"kind": kind})
        if lanes > 1:
            self.registry.inc("fused_executions")
            self.registry.inc("fused_lanes", lanes)
        self.registry.set_gauge("fusion_lanes", lanes)
        self.trace.record_span(
            Span(f"execute.{kind}", 0, "execute", seq, t0, t1, execution=seq)
        )
        return seq

    def record_fuse_bypass(self, reason: str) -> None:
        """One execution group skipped fusion (``disabled`` — the server
        turned it off, ``unsupported`` — the service advertises
        ``fuse_key=None``, ``single-lane`` — the group collapsed to one
        distinct param set, ``fuse-error`` — the combiner raised and the
        group fell back to unfused coalescing)."""
        with self._lock:
            self.fuse_bypass[reason] = self.fuse_bypass.get(reason, 0) + 1
        self.registry.inc("fuse_bypass", labels={"reason": reason})

    # -- transport ----------------------------------------------------------
    def record_connection_open(self, active: int) -> None:
        with self._lock:
            self.connections_opened += 1
            self.connections_active = active
        self.registry.inc("connections_opened")
        self.registry.set_gauge("connections_active", active)
        self.trace.record_queue(
            QueueSample(CONN_STREAM, time.perf_counter(), active, "put")
        )

    def record_connection_close(self, active: int) -> None:
        with self._lock:
            self.connections_closed += 1
            self.connections_active = active
        self.registry.inc("connections_closed")
        self.registry.set_gauge("connections_active", active)
        self.trace.record_queue(
            QueueSample(CONN_STREAM, time.perf_counter(), active, "get")
        )

    def record_frame_in(self, nbytes: int) -> None:
        with self._lock:
            self.frames_in += 1
            self.bytes_in += nbytes
        self.registry.inc("frames", labels={"dir": "in"})
        self.registry.inc("bytes", nbytes, labels={"dir": "in"})

    def record_frame_out(self, nbytes: int) -> None:
        with self._lock:
            self.frames_out += 1
            self.bytes_out += nbytes
        self.registry.inc("frames", labels={"dir": "out"})
        self.registry.inc("bytes", nbytes, labels={"dir": "out"})

    def record_decode_error(self) -> None:
        """A frame that could not be decoded (oversized, garbage, bad
        JSON, unknown schema) — the connection's problem, not a serving
        error."""
        with self._lock:
            self.decode_errors += 1
        self.registry.inc("decode_errors")

    def record_disconnect(self) -> None:
        """A client vanished mid-stream (EOF inside a frame or a broken
        pipe while responses were still owed)."""
        with self._lock:
            self.disconnects += 1
        self.registry.inc("disconnects")

    def record_request(
        self,
        kind: str,
        request_id: int,
        t0: float,
        status: str,
        trace_id: str | None = None,
        execution: int | None = None,
    ) -> None:
        """Terminal accounting of one request (span on the shared
        perf_counter timeline; ``t0`` is the submission timestamp)."""
        now = time.perf_counter()
        self.registry.observe("request", max(now - t0, 0.0), labels={"kind": kind})
        self.registry.inc("requests", labels={"kind": kind, "status": status})
        if self.sampled(request_id):
            self.trace.record_span(
                Span(
                    f"request.{kind}",
                    0,
                    "request",
                    request_id,
                    t0,
                    now,
                    trace=trace_id,
                    execution=execution,
                )
            )
        if status == "ok":
            with self._lock:
                self.served += 1
            self.registry.inc("served")

    # -- queries ------------------------------------------------------------
    def latency_percentiles(
        self, kind: str | None = None, window: float | None = None
    ) -> dict[str, float]:
        """Request latency percentiles from the windowed histograms —
        O(buckets) however many requests the server has seen.
        ``window=None`` reads all-time; a number reads the trailing
        window of that many seconds."""
        if kind is None:
            return self.registry.merged_percentiles("request", window=window)
        return self.registry.percentiles(
            "request", labels={"kind": kind}, window=window
        )

    def stage_percentiles(
        self, kind: str, stage: str, window: float | None = None
    ) -> dict[str, float]:
        """Per-stage latency percentiles for one request kind."""
        return self.registry.percentiles(
            "stage", labels={"kind": kind, "stage": stage}, window=window
        )

    def window(
        self, seconds: float = 10.0, kind: str | None = None
    ) -> dict[str, Any]:
        """The windowed signal an autoscale loop consumes: latency
        percentiles, throughput, and pressure over the trailing
        ``seconds`` (≤ 60, per-second resolution).

        Returns::

            {"seconds": ..., "latency": {"p50"/"p95"/"p99": s},
             "throughput_rps": served per second,
             "admitted_rps" / "error_rps" / "shed_rps" / "expired_rps": ...,
             "queue_depth_max": max depth seen in the window,
             "batch_size_max": ...}

        ``kind`` narrows latency to one request kind; rates are always
        server-wide.  All numbers come from the bounded registry, so the
        call is O(buckets) regardless of uptime — exactly the §4.3
        cost-model input the ROADMAP's autoscale item needs."""
        reg = self.registry
        return {
            "seconds": seconds,
            "latency": self.latency_percentiles(kind=kind, window=seconds),
            "throughput_rps": reg.rate("served", seconds),
            "admitted_rps": reg.rate("admitted", seconds),
            "error_rps": reg.rate("errors", seconds),
            "shed_rps": reg.rate("shed", seconds),
            "expired_rps": reg.rate("expired", seconds),
            "queue_depth_max": reg.gauge_window_max("queue_depth", seconds),
            "batch_size_max": reg.gauge_window_max("batch_size", seconds),
        }

    def mean_batch_occupancy(self) -> float:
        with self._lock:
            return self._occupancy_sum / self._batches if self._batches else 0.0

    def queue_depth_max(self) -> int:
        """All-time queue-depth high-water mark (registry peak gauge, so
        it survives trace rotation)."""
        return int(self.registry.gauge_peak("queue_depth"))

    def snapshot(self, deep: bool = False) -> dict[str, object]:
        """The ``stats`` response payload.  ``deep=True`` adds the full
        windowed registry view (per-kind and per-stage percentiles for
        the 1 s / 10 s / 60 s trailing windows, rates, gauge maxima)."""
        with self._lock:
            counters = {
                "admitted": self.admitted,
                "served": self.served,
                "rejected": self.rejected,
                "shed": self.shed,
                "expired": self.expired,
                "errors": self.errors,
                "executions": self.executions,
                "plan_cache_hits": self.cache_hits,
                "batches": self._batches,
            }
            fusion = {
                "fused_executions": self.fused_executions,
                "fused_lanes": self.fused_lanes,
                "mean_lanes_per_fused_execution": round(
                    self.fused_lanes / self.fused_executions, 3
                )
                if self.fused_executions
                else 0.0,
                "mean_group_size": round(
                    self._group_sum / self.executions, 3
                )
                if self.executions
                else 0.0,
                "bypass": dict(self.fuse_bypass),
            }
            transport = {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "connections_active": self.connections_active,
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "decode_errors": self.decode_errors,
                "disconnects": self.disconnects,
            }
        out: dict[str, object] = {
            **counters,
            "fusion": fusion,
            "transport": transport,
            "batch_occupancy_mean": round(self.mean_batch_occupancy(), 3),
            "queue_depth_max": self.queue_depth_max(),
            "dropped_spans": self.trace.dropped_spans,
            "dropped_events": self.trace.dropped_events,
            "latency": {
                k: round(v, 6) for k, v in self.latency_percentiles().items()
            },
        }
        if deep:
            out["windows"] = self.registry.snapshot(windows=DEFAULT_WINDOWS)
        return out

    def render_prometheus(self, namespace: str = "repro_serve") -> str:
        """Prometheus text exposition of the windowed registry plus the
        trace-retention counter."""
        text = self.registry.render_prometheus(namespace=namespace)
        return (
            text
            + f"# TYPE {namespace}_dropped_spans_total counter\n"
            + f"{namespace}_dropped_spans_total {self.trace.dropped_spans}\n"
        )

    def engine_tap(self, downstream: TraceCollector | None = None) -> EngineSpanTap:
        """The collector the server installs as ``EngineOptions.trace``."""
        return EngineSpanTap(self, downstream)

    def export_trace(self) -> Trace:
        """A consistent standalone copy of the bounded trace with the
        current snapshot folded into its metadata — safe to export while
        the server is still running, and leaves the live trace's
        metadata untouched (repeated exports do not stack keys)."""
        spans, queues, blocked, meta = self.trace.copy_events()
        out = Trace()
        out.merge(spans=spans, queue_samples=queues, blocked=blocked)
        snap = self.snapshot()
        snap.pop("windows", None)
        out.note(**meta, **{f"serve.{k}": v for k, v in snap.items()})
        return out

    def write_jsonl(self, path: str) -> None:
        """Export the metrics trace as JSON lines (counters ride in the
        trace metadata).  Idempotent: exports a copy, so repeated calls
        never stack ``serve.*`` keys into the live trace."""
        write_jsonl(self.export_trace(), path)
