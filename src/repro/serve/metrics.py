"""The serving metrics surface, built on the existing ``obs`` spans.

Rather than invent a metrics registry, the server feeds the same
:class:`~repro.datacutter.obs.Trace` the engines feed:

* one ``request`` span per client request — filter ``request.<kind>``,
  packet = request id, admission to response — so latency percentiles are
  a :meth:`Trace.duration_percentiles` query;
* one ``execute`` span per micro-batched pipeline execution — filter
  ``execute.<kind>`` — whose packet key is the execution sequence number;
* queue-depth gauges on the synthetic ``serve.queue`` stream at every
  admission/dispatch, and batch-occupancy gauges on ``serve.batch``;
* live-connection gauges on ``serve.connections`` at every socket
  accept/close, plus transport counters (connections, frames and bytes
  in/out, decode errors, mid-stream disconnects) fed by
  :mod:`repro.serve.transport`;
* counters (admitted / rejected / shed / expired / errors, plus request
  fusion: fused executions, lanes per execution, and per-reason fusion
  bypasses) in the trace metadata.

Everything therefore exports through the stock JSON-lines exporter
(:func:`~repro.datacutter.obs.write_jsonl`) and round-trips through
``read_jsonl`` — the `serve` CLI's ``-o`` artifact is an ordinary
observability trace, and :meth:`ServerMetrics.snapshot` is the payload of
the ``stats`` request type.
"""

from __future__ import annotations

import threading
import time

from ..datacutter.obs import Trace, write_jsonl
from ..datacutter.obs.trace import QueueSample, Span

#: synthetic stream names for the serving gauges
QUEUE_STREAM = "serve.queue"
BATCH_STREAM = "serve.batch"
CONN_STREAM = "serve.connections"


class ServerMetrics:
    """Thread-safe serving telemetry over one :class:`Trace`."""

    def __init__(self) -> None:
        self.trace = Trace()
        self.trace.note(role="serve")
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.expired = 0
        self.errors = 0
        self.served = 0
        self.executions = 0
        self.cache_hits = 0
        self._occupancy_sum = 0
        self._batches = 0
        # request fusion (lane-batched executions over distinct params)
        self.fused_executions = 0
        self.fused_lanes = 0
        self._group_sum = 0
        self.fuse_bypass: dict[str, int] = {}
        # transport counters (socket connections and wire frames)
        self.connections_opened = 0
        self.connections_closed = 0
        self.connections_active = 0
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.decode_errors = 0
        self.disconnects = 0

    # -- recording ----------------------------------------------------------
    def record_admission(self, depth: int) -> None:
        with self._lock:
            self.admitted += 1
        self.trace.record_queue(
            QueueSample(QUEUE_STREAM, time.perf_counter(), depth, "put")
        )

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_expired(self) -> None:
        with self._lock:
            self.expired += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_dispatch(self, depth: int, batch_size: int) -> None:
        """One micro-batch left the queue."""
        now = time.perf_counter()
        self.trace.record_queue(QueueSample(QUEUE_STREAM, now, depth, "get"))
        self.trace.record_queue(QueueSample(BATCH_STREAM, now, batch_size, "get"))
        with self._lock:
            self._occupancy_sum += batch_size
            self._batches += 1

    def record_execution(
        self,
        kind: str,
        t0: float,
        t1: float,
        group_size: int,
        cache_hit: bool,
        lanes: int = 1,
    ) -> int:
        """One pipeline execution served ``group_size`` coalesced requests
        across ``lanes`` fused lanes (1 = not fused); returns the execution
        sequence number."""
        with self._lock:
            self.executions += 1
            if cache_hit:
                self.cache_hits += 1
            self._group_sum += group_size
            if lanes > 1:
                self.fused_executions += 1
                self.fused_lanes += lanes
            seq = self.executions
        self.trace.record_span(Span(f"execute.{kind}", 0, "execute", seq, t0, t1))
        return seq

    def record_fuse_bypass(self, reason: str) -> None:
        """One execution group skipped fusion (``disabled`` — the server
        turned it off, ``unsupported`` — the service advertises
        ``fuse_key=None``, ``single-lane`` — the group collapsed to one
        distinct param set, ``fuse-error`` — the combiner raised and the
        group fell back to unfused coalescing)."""
        with self._lock:
            self.fuse_bypass[reason] = self.fuse_bypass.get(reason, 0) + 1

    # -- transport ----------------------------------------------------------
    def record_connection_open(self, active: int) -> None:
        with self._lock:
            self.connections_opened += 1
            self.connections_active = active
        self.trace.record_queue(
            QueueSample(CONN_STREAM, time.perf_counter(), active, "put")
        )

    def record_connection_close(self, active: int) -> None:
        with self._lock:
            self.connections_closed += 1
            self.connections_active = active
        self.trace.record_queue(
            QueueSample(CONN_STREAM, time.perf_counter(), active, "get")
        )

    def record_frame_in(self, nbytes: int) -> None:
        with self._lock:
            self.frames_in += 1
            self.bytes_in += nbytes

    def record_frame_out(self, nbytes: int) -> None:
        with self._lock:
            self.frames_out += 1
            self.bytes_out += nbytes

    def record_decode_error(self) -> None:
        """A frame that could not be decoded (oversized, garbage, bad
        JSON, unknown schema) — the connection's problem, not a serving
        error."""
        with self._lock:
            self.decode_errors += 1

    def record_disconnect(self) -> None:
        """A client vanished mid-stream (EOF inside a frame or a broken
        pipe while responses were still owed)."""
        with self._lock:
            self.disconnects += 1

    def record_request(self, kind: str, request_id: int, t0: float, status: str) -> None:
        """Terminal accounting of one request (span on the shared
        perf_counter timeline; ``t0`` is the admission timestamp)."""
        self.trace.record_span(
            Span(f"request.{kind}", 0, "request", request_id, t0, time.perf_counter())
        )
        if status == "ok":
            with self._lock:
                self.served += 1

    # -- queries ------------------------------------------------------------
    def latency_percentiles(self, kind: str | None = None) -> dict[str, float]:
        filter_name = f"request.{kind}" if kind is not None else None
        if filter_name is None:
            # percentile over every request span regardless of kind
            durations = [
                s for s in self.trace.spans if s.phase == "request"
            ]
            probe = Trace()
            probe.merge(spans=durations)
            return probe.duration_percentiles(phase="request")
        return self.trace.duration_percentiles(filter=filter_name, phase="request")

    def mean_batch_occupancy(self) -> float:
        with self._lock:
            return self._occupancy_sum / self._batches if self._batches else 0.0

    def queue_depth_max(self) -> int:
        return self.trace.max_depth(QUEUE_STREAM)

    def snapshot(self) -> dict[str, object]:
        """The ``stats`` response payload."""
        with self._lock:
            counters = {
                "admitted": self.admitted,
                "served": self.served,
                "rejected": self.rejected,
                "shed": self.shed,
                "expired": self.expired,
                "errors": self.errors,
                "executions": self.executions,
                "plan_cache_hits": self.cache_hits,
                "batches": self._batches,
            }
            fusion = {
                "fused_executions": self.fused_executions,
                "fused_lanes": self.fused_lanes,
                "mean_lanes_per_fused_execution": round(
                    self.fused_lanes / self.fused_executions, 3
                )
                if self.fused_executions
                else 0.0,
                "mean_group_size": round(
                    self._group_sum / self.executions, 3
                )
                if self.executions
                else 0.0,
                "bypass": dict(self.fuse_bypass),
            }
            transport = {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "connections_active": self.connections_active,
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "decode_errors": self.decode_errors,
                "disconnects": self.disconnects,
            }
        return {
            **counters,
            "fusion": fusion,
            "transport": transport,
            "batch_occupancy_mean": round(self.mean_batch_occupancy(), 3),
            "queue_depth_max": self.queue_depth_max(),
            "latency": {
                k: round(v, 6) for k, v in self.latency_percentiles().items()
            },
        }

    def write_jsonl(self, path: str) -> None:
        """Export the full metrics trace as JSON lines (counters ride in
        the trace metadata)."""
        self.trace.note(**{f"serve.{k}": v for k, v in self.snapshot().items()})
        write_jsonl(self.trace, path)
