"""Socket transport: the same serving path, reachable from other hosts.

The paper's pipelines span a *chain of hosts* (data host → compute nodes
→ viewing node), but until this module the server only accepted work
through the in-process :class:`~repro.serve.client.LocalClient`.  The
transport closes that gap without forking the execution path: a frame
decoded off a socket becomes an ordinary
:class:`~repro.serve.requests.Request` and enters the *same* admission →
micro-batch → plan-cache → warm-engine pipeline as a local call.  One
canonical path, however the work arrives.

Wire frame (all integers big-endian)::

    offset  size        field
    0       4           magic  b"DCUT"
    4       1           frame version (currently 1)
    5       1           frame type: 1=request 2=response 3=error 4=hello
    6       2           segment count  n
    8       4           header length  H
    12      4*n         segment lengths  L_0 .. L_{n-1}
    12+4n   H           header (UTF-8 JSON)
    ...     sum(L_i)    binary segments, concatenated

The JSON header is the :meth:`Request.to_wire` / :meth:`Response.to_wire`
dict (schema-versioned independently of the frame version); binary
segments carry bulk payloads (ndarray buffers, bytes) referenced by index
from the header.  ``H + sum(L_i)`` is capped
(:attr:`ServerOptions.max_frame_bytes`); an oversized frame is discarded
in bounded chunks and answered with a structured error — the connection
stays up.  A bad magic means the stream is desynchronized and the
connection is closed; a clean or mid-frame EOF just ends the connection.

Server side, :class:`TransportListener` accepts concurrent connections;
each gets a reader thread (decode → ``server.submit_request``) and a
writer thread draining a *bounded* in-flight queue in FIFO order.  The
bound is the per-connection flow control: when a client has
``max_inflight`` unanswered requests the reader stops reading, TCP
backpressure does the rest.  Admission-control rejections need no
special handling — the server resolves the future immediately with
``status="rejected"`` and ``retry_after``, and that response flows back
over the wire like any other.

Client side, :class:`~repro.serve.client.RemoteClient` mirrors
``LocalClient`` call-for-call over one connection (see
:mod:`repro.serve.client`); the helpers here (:func:`write_frame` /
:func:`read_frame` / :func:`parse_address`) are shared by both ends.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import threading
import time
from typing import TYPE_CHECKING, Any, BinaryIO, Sequence

from .requests import (
    Request,
    Response,
    SchemaVersionError,
    WireFormatError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, no import cycle
    from .server import PipelineServer

MAGIC = b"DCUT"
FRAME_VERSION = 1

#: frame types
T_REQUEST = 1
T_RESPONSE = 2
T_ERROR = 3
T_HELLO = 4

#: fixed header: magic, frame version, frame type, nseg, header length
_FIXED = struct.Struct("!4sBBHI")

#: default cap on one frame's variable part (header + segments)
DEFAULT_MAX_FRAME = 64 * 1024 * 1024
#: default per-connection in-flight bound (flow control)
DEFAULT_MAX_INFLIGHT = 64


class FrameError(RuntimeError):
    """An unrecoverable framing problem — the stream is desynchronized
    (bad magic, unknown frame version) and the connection must close."""


class FrameTooLarge(FrameError):
    """A well-framed message over the size cap.  Recoverable: the frame
    was discarded in full, the stream stays aligned."""

    def __init__(self, declared: int, cap: int) -> None:
        super().__init__(f"frame of {declared} bytes exceeds the {cap}-byte cap")
        self.declared = declared
        self.cap = cap


class FrameTruncated(ConnectionError):
    """EOF in the middle of a frame (peer died or sent a short frame)."""


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` or an already-split tuple -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return host, int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be 'host:port', got {address!r}")
    return host, int(port)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(
    ftype: int, header: dict[str, Any], segments: Sequence[bytes] = ()
) -> bytes:
    """One wire frame as bytes (see the module docstring for the layout)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    parts = [
        _FIXED.pack(MAGIC, FRAME_VERSION, ftype, len(segments), len(header_bytes)),
        struct.pack(f"!{len(segments)}I", *(len(s) for s in segments)),
        header_bytes,
        *segments,
    ]
    return b"".join(parts)


def frame_overhead(nseg: int) -> int:
    """Fixed bytes a frame wraps around its variable part; ``len(frame) -
    frame_overhead(nseg)`` is the size :func:`read_frame` checks against
    ``max_frame`` (senders use this to pre-check against the peer's cap)."""
    return _FIXED.size + 4 * nseg


def write_frame(
    sock: socket.socket,
    ftype: int,
    header: dict[str, Any],
    segments: Sequence[bytes] = (),
    lock: threading.Lock | None = None,
) -> int:
    """Serialize and send one frame atomically; returns bytes written."""
    frame = encode_frame(ftype, header, segments)
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)
    return len(frame)


def _read_exact(rfile: BinaryIO, n: int, *, at_boundary: bool = False) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame boundary,
    :class:`FrameTruncated` on EOF anywhere else."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = rfile.read(n - got)
        if not chunk:
            if at_boundary and got == 0:
                return None
            raise FrameTruncated(
                f"connection closed mid-frame ({got}/{n} bytes read)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _discard(rfile: BinaryIO, n: int, chunk: int = 1 << 16) -> None:
    while n > 0:
        data = rfile.read(min(n, chunk))
        if not data:
            raise FrameTruncated("connection closed while discarding a frame")
        n -= len(data)


def read_frame(
    rfile: BinaryIO, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[int, dict[str, Any], list[bytes], int] | None:
    """Read one frame: ``(type, header, segments, wire_bytes)``.

    ``None`` means the peer closed cleanly between frames.  Raises
    :class:`FrameTooLarge` (recoverable — the oversized frame was
    consumed), :class:`WireFormatError` (recoverable — bad JSON in a
    well-framed message), :class:`FrameError` (desync; close the
    connection), or :class:`FrameTruncated` (peer died mid-frame)."""
    fixed = _read_exact(rfile, _FIXED.size, at_boundary=True)
    if fixed is None:
        return None
    magic, version, ftype, nseg, header_len = _FIXED.unpack(fixed)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (stream desynchronized)")
    if version != FRAME_VERSION:
        raise FrameError(
            f"unknown frame version {version} (this build speaks {FRAME_VERSION})"
        )
    table = _read_exact(rfile, 4 * nseg)
    assert table is not None
    seg_lens = struct.unpack(f"!{nseg}I", table)
    total = header_len + sum(seg_lens)
    if total > max_frame:
        _discard(rfile, total)
        raise FrameTooLarge(total, max_frame)
    header_bytes = _read_exact(rfile, header_len)
    assert header_bytes is not None
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        # framing was intact, so the stream stays aligned: consume the
        # segments and report a recoverable decode error
        for n in seg_lens:
            _discard(rfile, n)
        raise WireFormatError(f"frame header is not valid JSON: {exc}") from None
    if not isinstance(header, dict):
        for n in seg_lens:
            _discard(rfile, n)
        raise WireFormatError("frame header must be a JSON object")
    segments = []
    for n in seg_lens:
        seg = _read_exact(rfile, n)
        assert seg is not None
        segments.append(seg)
    return ftype, header, segments, _FIXED.size + len(table) + total


def error_header(message: str, *, cid: int | None = None) -> dict[str, Any]:
    """Header of a structured wire-level error response (frame type
    :data:`T_ERROR`); ``cid`` echoes the offending request id when it
    could be parsed."""
    response = Response(
        id=cid if cid is not None else 0,
        kind="transport",
        status="error",
        error=message,
    )
    header, _segments = response.to_wire()
    if cid is not None:
        header["cid"] = cid
    return header


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------


class _Connection:
    """One accepted client: a reader thread feeding the server and a
    writer thread draining responses in submission order."""

    def __init__(self, listener: "TransportListener", sock: socket.socket) -> None:
        self.listener = listener
        self.sock = sock
        self.peer = "%s:%s" % tuple(sock.getpeername()[:2])
        self.rfile = sock.makefile("rb")
        self.wlock = threading.Lock()
        self._closed = threading.Event()
        # (cid, pending) in FIFO order; the bound IS the flow control:
        # a full queue blocks the reader, which stops draining the
        # socket, which backpressures the client through TCP
        self.inflight: queue.Queue = queue.Queue(maxsize=listener.max_inflight)
        self.reader = threading.Thread(
            target=self._read_loop, name=f"serve-conn-r-{self.peer}", daemon=True
        )
        self.writer = threading.Thread(
            target=self._write_loop, name=f"serve-conn-w-{self.peer}", daemon=True
        )

    def start(self) -> None:
        self.reader.start()
        self.writer.start()

    # -- reader --------------------------------------------------------------
    def _read_loop(self) -> None:
        server = self.listener.server
        metrics = server.metrics
        try:
            self._send_hello()
            while not self._closed.is_set():
                try:
                    frame = read_frame(self.rfile, self.listener.max_frame)
                except FrameTooLarge as exc:
                    metrics.record_decode_error()
                    self._send_error(str(exc))
                    continue  # frame fully discarded; stream still aligned
                except WireFormatError as exc:
                    metrics.record_decode_error()
                    self._send_error(str(exc))
                    continue
                except FrameError as exc:
                    metrics.record_decode_error()
                    self._send_error(str(exc))
                    break  # desynchronized: nothing sane can follow
                except (FrameTruncated, OSError):
                    metrics.record_disconnect()
                    break
                if frame is None:
                    break  # clean goodbye
                ftype, header, segments, nbytes = frame
                metrics.record_frame_in(nbytes)
                if ftype != T_REQUEST:
                    metrics.record_decode_error()
                    self._send_error(f"unexpected frame type {ftype} from a client")
                    continue
                self._handle_request(header, segments)
        finally:
            self.close()

    def _handle_request(
        self, header: dict[str, Any], segments: list[bytes]
    ) -> None:
        from .server import ServerClosed

        server = self.listener.server
        cid = header.get("id") if isinstance(header.get("id"), int) else None
        try:
            request = Request.from_wire(header, segments)
        except (SchemaVersionError, WireFormatError) as exc:
            server.metrics.record_decode_error()
            self._send_error(str(exc), cid=cid)
            return
        try:
            pending = server.submit_request(request)
        except ValueError as exc:  # unknown request kind
            self._send_error(str(exc), cid=cid)
            return
        except ServerClosed as exc:
            self._send_error(str(exc), cid=cid)
            self.close()
            return
        # a full queue blocks here — that IS the flow control — but in
        # bounded slices so close() can interrupt a reader stuck behind a
        # writer that already exited
        while not self._closed.is_set():
            try:
                self.inflight.put((cid, pending), timeout=0.2)
                return
            except queue.Full:
                continue

    # -- writer --------------------------------------------------------------
    def _write_loop(self) -> None:
        metrics = self.listener.server.metrics
        while True:
            # poll in slices: close() may be unable to enqueue the wake-up
            # sentinel when the queue is full, so the clock is the backstop
            try:
                item = self.inflight.get(timeout=0.2)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            if item is None:
                return
            cid, pending = item
            # wait in short slices so close() can interrupt a long wait
            while not pending._event.wait(0.2):
                if self._closed.is_set():
                    return
            response = pending.result(0)
            try:
                header, segments = response.to_wire()
                if cid is not None:
                    header["cid"] = cid
                frame = encode_frame(T_RESPONSE, header, segments)
            except (WireFormatError, TypeError, ValueError, struct.error) as exc:
                # struct.error: >65535 segments or a segment >= 4 GiB —
                # responses are not capped by max_frame the way requests are
                # un-encodable response value: tell the client, keep going
                frame = encode_frame(
                    T_ERROR,
                    error_header(f"response not wire-encodable: {exc}", cid=cid),
                )
            t0 = time.perf_counter()
            try:
                with self.wlock:
                    self.sock.sendall(frame)
                metrics.record_frame_out(len(frame))
            except OSError:
                # client went away mid-batch; the dispatcher is unaffected
                metrics.record_disconnect()
                self.close()
                return
            # the last stage of a remote request's life: the response
            # write back over the wire, linked to the request's trace
            request = pending.request
            metrics.record_stage(
                request.kind,
                "write",
                t0,
                time.perf_counter(),
                request_id=request.id,
                trace_id=request.trace_id,
            )

    # -- helpers -------------------------------------------------------------
    def _send_hello(self) -> None:
        from .requests import SCHEMA_VERSION, STATS_KIND

        header = {
            "schema": SCHEMA_VERSION,
            "frame_version": FRAME_VERSION,
            "services": sorted(self.listener.server.services) + [STATS_KIND],
            "max_frame": self.listener.max_frame,
        }
        nbytes = write_frame(self.sock, T_HELLO, header, lock=self.wlock)
        self.listener.server.metrics.record_frame_out(nbytes)

    def _send_error(self, message: str, *, cid: int | None = None) -> None:
        try:
            nbytes = write_frame(
                self.sock, T_ERROR, error_header(message, cid=cid), lock=self.wlock
            )
            self.listener.server.metrics.record_frame_out(nbytes)
        except OSError:
            self.listener.server.metrics.record_disconnect()
            self.close()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        # shutdown first: it unblocks a reader parked in recv() and makes
        # the writer's next sendall() fail fast.  The sentinel only has to
        # wake an *idle* writer, so a full queue (normal under flow
        # control) must not block the closing thread — drop it instead.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.inflight.put_nowait(None)
        except queue.Full:
            pass  # writer is busy, it will notice _closed on its own
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass
        self.listener._connection_closed(self)


class TransportListener:
    """Accepts TCP connections and feeds decoded requests into one
    :class:`~repro.serve.server.PipelineServer`'s admission queue."""

    def __init__(
        self,
        server: "PipelineServer",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int | None = None,
        max_inflight: int | None = None,
        backlog: int = 64,
    ) -> None:
        self.server = server
        opts = server.options
        self.max_frame = max_frame if max_frame is not None else opts.max_frame_bytes
        self.max_inflight = (
            max_inflight if max_inflight is not None else opts.max_inflight
        )
        self._sock = socket.create_server((host, port), reuse_port=False)
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        self._closed = threading.Event()
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="serve-acceptor", daemon=True
        )

    def start(self) -> "TransportListener":
        self._acceptor.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self._sock.accept()
            except OSError:
                return  # listening socket closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                conn = _Connection(self, sock)
            except OSError:  # pragma: no cover - peer gone before setup
                continue
            with self._conn_lock:
                if self._closed.is_set():
                    sock.close()
                    return
                self._connections.add(conn)
                active = len(self._connections)
            self.server.metrics.record_connection_open(active)
            try:
                conn.start()
            except RuntimeError:  # pragma: no cover - interpreter shutdown
                conn.close()

    def _connection_closed(self, conn: _Connection) -> None:
        with self._conn_lock:
            if conn not in self._connections:
                return
            self._connections.discard(conn)
            active = len(self._connections)
        self.server.metrics.record_connection_close(active)

    @property
    def connections(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    def close(self) -> None:
        """Stop accepting and drop every live connection."""
        if self._closed.is_set():
            return
        self._closed.set()
        # shutdown before close: close() alone does not wake a thread
        # already blocked in accept(), which would stall stop() on the
        # acceptor join below
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        with self._conn_lock:
            live = list(self._connections)
        for conn in live:
            conn.close()
        if self._acceptor.is_alive():
            self._acceptor.join(timeout=5.0)

    def __enter__(self) -> "TransportListener":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
