"""Warm pipeline sessions: plan cache + reusable engine, per server.

:class:`SessionPool` is the execution half of the server: given a
:class:`~repro.serve.requests.ServicePlan` it

1. compiles through the :class:`~repro.serve.plancache.PlanCache`
   (a hit skips the whole compiler stack),
2. binds the request's packets/params into placed filter specs
   (``pipeline.specs`` — cheap: fresh ``FilterSpec`` objects over the
   cached generated filter classes),
3. executes on the warm :class:`~repro.datacutter.engine.EngineSession`,
   which reuses one engine object across every request the server ever
   serves (``Engine.rebind``) instead of reconstructing it per run.  On
   the process engine the session additionally retains a *resident worker
   pool*: the filter processes are forked once, on the first request, and
   every later request ships its bound specs to them as a fresh work
   epoch over per-worker control channels — no fork, no re-import, warm
   shared-memory segments (set ``EngineOptions(resident=False)`` to force
   the old fork-per-run behaviour).

Per-batch recovery comes for free: whatever ``RetryPolicy`` the server's
:class:`~repro.datacutter.engine.EngineOptions` carries is applied by the
engine to every execution, so a transient filter failure retries inside
the batch rather than failing the client.  :meth:`SessionPool.close` is
correspondingly a real lifecycle event now — it delivers the resident
pool's poison pill and joins the workers — and a close racing an
in-flight request fails that request with a structured error instead of
hanging or leaking processes."""

from __future__ import annotations

from ..datacutter.engine import EngineOptions, EngineSession
from ..datacutter.runtime import RunResult
from .plancache import PlanCache
from .requests import ServicePlan


class SessionPool:
    """One warm engine + one plan cache serving every request.

    Not thread-safe by design: the server's single dispatcher thread owns
    it (parallelism lives *inside* the pipeline, across its filter
    copies, not across concurrent engine runs)."""

    def __init__(
        self,
        engine_options: EngineOptions | None = None,
        cache: PlanCache | None = None,
    ) -> None:
        self.engine_options = (
            engine_options if engine_options is not None else EngineOptions()
        )
        self.cache = cache if cache is not None else PlanCache()
        self.session = EngineSession(self.engine_options)

    def execute(self, plan: ServicePlan) -> tuple[RunResult, bool]:
        """Answer one request group; returns (run result, plan-cache hit)."""
        result, hit = self.cache.compile(
            plan.source, plan.registry, plan.options
        )
        specs = result.pipeline.specs(plan.packets, plan.params, plan.widths)
        return self.session.run(specs), hit

    def close(self) -> None:
        self.session.close()


def oneshot(plan: ServicePlan, engine_options: EngineOptions | None = None):
    """Answer one plan the pre-serving way: fresh compile, fresh engine.

    The differential baseline for tests, ``--verify``, and the throughput
    benchmark — a served response is correct iff it is byte-identical to
    this."""
    from ..core.compiler import compile_source
    from ..datacutter.engine import run_pipeline

    result = compile_source(plan.source, plan.registry, plan.options)
    specs = result.pipeline.specs(plan.packets, plan.params, plan.widths)
    run = run_pipeline(specs, options=engine_options)
    return plan.extract(run.payloads)
