"""Pipeline-as-a-service: persistent serving over warm compiled pipelines.

The one-shot drivers (``run``/``figures``/``chaos``) compile, execute,
and tear down per invocation.  This subsystem keeps the expensive parts
alive across requests — the shape a pipeline needs to serve heavy
traffic:

* :mod:`~repro.serve.plancache` — compilation results keyed by (source,
  compile context, resolved backend, decomposition environment); a hit
  skips parse→analysis→decompose→codegen entirely;
* :mod:`~repro.serve.broker` — bounded admission queue (block /
  reject-with-retry-after / shed-oldest) and micro-batch assembly under a
  size/deadline budget;
* :mod:`~repro.serve.session` — a warm engine reused across every
  request (``EngineSession`` + ``Engine.rebind``), with per-batch
  recovery via the engine's retry policy;
* :mod:`~repro.serve.server` — the dispatcher tying it together, with
  per-request deadlines and graceful drain;
* :mod:`~repro.serve.metrics` — request-scoped ``obs`` spans: latency
  percentiles, batch occupancy, queue depth, shed counts, exported
  through the stock JSON-lines exporter and the ``stats`` request type;
* :mod:`~repro.serve.client` — the in-process client used by tests, the
  throughput benchmark, and ``python -m repro serve``.

Request→packet adapters for the bundled applications live next to the
apps themselves (``repro.apps.make_knn_service`` /
``make_vmscope_service``).
"""

from .broker import AdmissionQueue
from .client import LocalClient
from .metrics import ServerMetrics
from .plancache import CacheStats, PlanCache
from .requests import (
    STATS_KIND,
    PendingResponse,
    Request,
    Response,
    Service,
    ServicePlan,
)
from .server import PipelineServer, ServerClosed, ServerOptions
from .session import SessionPool, oneshot

__all__ = [
    "AdmissionQueue",
    "CacheStats",
    "LocalClient",
    "PendingResponse",
    "PipelineServer",
    "PlanCache",
    "Request",
    "Response",
    "STATS_KIND",
    "ServerClosed",
    "ServerMetrics",
    "ServerOptions",
    "Service",
    "ServicePlan",
    "SessionPool",
    "oneshot",
]
