"""Pipeline-as-a-service: persistent serving over warm compiled pipelines.

The one-shot drivers (``run``/``figures``/``chaos``) compile, execute,
and tear down per invocation.  This subsystem keeps the expensive parts
alive across requests — the shape a pipeline needs to serve heavy
traffic:

* :mod:`~repro.serve.plancache` — compilation results keyed by (source,
  compile context, resolved backend, decomposition environment); a hit
  skips parse→analysis→decompose→codegen entirely; the exported
  :class:`PlanCacheProtocol` is the ``compile_source(cache=)`` contract;
* :mod:`~repro.serve.broker` — bounded admission queue (block /
  reject-with-retry-after / shed-oldest) and micro-batch assembly under a
  size/deadline budget;
* :mod:`~repro.serve.session` — a warm engine reused across every
  request (``EngineSession`` + ``Engine.rebind``), with per-batch
  recovery via the engine's retry policy;
* :mod:`~repro.serve.server` — the dispatcher tying it together, with
  per-request deadlines and graceful drain;
* :mod:`~repro.serve.transport` — the multi-host path: a length-prefixed,
  versioned wire protocol (framed JSON + binary payload segments) over
  TCP, with a listener that feeds decoded requests into the *same*
  admission → micro-batch → plan-cache → warm-engine path local calls
  take;
* :mod:`~repro.serve.metrics` — the observability surface: per-request
  *stage* spans (admission → queue → assemble → execute → extract →
  write) linked by trace id and execution id to the engine-level filter
  spans in one bounded trace, plus the windowed counters/gauges/latency
  histograms of :mod:`~repro.serve.timeseries` behind ``stats``
  percentiles, the Prometheus exposition, and the
  :meth:`ServerMetrics.window` autoscale signal;
* :mod:`~repro.serve.timeseries` — the bounded time-series primitives:
  mergeable log-bucket latency histograms and per-second rolling windows
  (1 s / 10 s / 60 s) under one registry;
* :mod:`~repro.serve.client` — the :class:`Client` protocol and its two
  transports: :class:`LocalClient` (in-process function call) and
  :class:`RemoteClient` (socket), mirror images used interchangeably by
  tests, the throughput benchmark, and ``python -m repro serve``.

Request→packet adapters for the bundled applications live next to the
apps themselves (``repro.apps.make_knn_service`` /
``make_vmscope_service``).
"""

from .broker import AdmissionQueue
from .client import BaseClient, Client, LocalClient, RemoteClient
from .metrics import EngineSpanTap, ServerMetrics
from .plancache import CacheStats, PlanCache, PlanCacheProtocol
from .requests import (
    SCHEMA_VERSION,
    STATS_KIND,
    SUPPORTED_SCHEMAS,
    PendingResponse,
    Request,
    Response,
    SchemaVersionError,
    Service,
    ServicePlan,
    WireFormatError,
    mint_trace_id,
)
from .server import PipelineServer, ServerClosed, ServerOptions
from .session import SessionPool, oneshot
from .timeseries import LatencyHistogram, MetricsRegistry
from .transport import TransportListener

__all__ = [
    "AdmissionQueue",
    "BaseClient",
    "CacheStats",
    "Client",
    "EngineSpanTap",
    "LatencyHistogram",
    "LocalClient",
    "MetricsRegistry",
    "PendingResponse",
    "PipelineServer",
    "PlanCache",
    "PlanCacheProtocol",
    "RemoteClient",
    "Request",
    "Response",
    "SCHEMA_VERSION",
    "STATS_KIND",
    "SUPPORTED_SCHEMAS",
    "SchemaVersionError",
    "ServerClosed",
    "ServerMetrics",
    "ServerOptions",
    "Service",
    "ServicePlan",
    "SessionPool",
    "TransportListener",
    "WireFormatError",
    "mint_trace_id",
    "oneshot",
]
