"""Bounded time-series metrics for the serving stack.

The serve path used to answer every ``stats`` request by rescanning an
unbounded span list, so snapshot cost and memory grew with request
count.  This module replaces that with three O(1)-per-event primitives
and a registry tying them together:

* :class:`LatencyHistogram` — fixed log-spaced buckets (1e-5 s .. 1e2 s,
  8 per decade).  Observing is one bucket increment; percentiles are a
  single pass over ~56 buckets with log interpolation inside the
  winning bucket, independent of how many values were observed.
  Histograms merge bucket-wise, which is what makes windowing work.
* :class:`WindowedCounter` / :class:`WindowedGauge` — a monotonic total
  (or last-value gauge) plus a ring of per-second slots stamped with
  their wall second, so 1 s / 10 s / 60 s rolling sums, rates, and
  maxima cost one pass over at most 61 slots.
* :class:`WindowedHistogram` — a cumulative histogram plus a ring of
  per-second histograms; ``window(10)`` merges the last ten seconds
  into a fresh histogram for windowed percentiles.

:class:`MetricsRegistry` keys all three by ``(name, labels)`` under one
lock, renders Prometheus text exposition, and takes an injectable clock
so tests can step time deterministically.  Memory is fixed by
construction: nothing here retains per-request state.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Iterable

#: histogram bucket geometry: log-spaced from 10 microseconds to 100
#: seconds, 8 buckets per decade.  Upper bounds are exclusive; a final
#: overflow bucket catches anything >= 1e2 s (and negatives clamp to
#: the first bucket).
HIST_LO = 1e-5
HIST_HI = 1e2
HIST_PER_DECADE = 8

#: ring horizon in seconds: one more than the widest window we serve,
#: so a 60 s window never reads a slot that the current second is
#: about to overwrite
DEFAULT_HORIZON = 61

#: windows (seconds) rendered in deep snapshots
DEFAULT_WINDOWS = (1.0, 10.0, 60.0)

_DECADES = int(round(math.log10(HIST_HI / HIST_LO)))
_NBUCKETS = _DECADES * HIST_PER_DECADE  # plus one overflow bucket

#: shared exclusive upper bound per bucket, in seconds
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    HIST_LO * 10.0 ** ((i + 1) / HIST_PER_DECADE) for i in range(_NBUCKETS)
)


def bucket_index(seconds: float) -> int:
    """Bucket index for a latency value (clamped into range)."""
    if seconds <= HIST_LO:
        return 0
    if seconds >= HIST_HI:
        return _NBUCKETS  # overflow bucket
    i = int(math.log10(seconds / HIST_LO) * HIST_PER_DECADE)
    # float rounding can land one bucket low at exact boundaries
    if i < _NBUCKETS and seconds >= BUCKET_BOUNDS[i]:
        i += 1
    return min(i, _NBUCKETS)


class LatencyHistogram:
    """Fixed-bucket mergeable latency histogram.

    Not thread safe on its own; :class:`MetricsRegistry` serializes
    access.  ``counts`` has one overflow bucket past
    :data:`BUCKET_BOUNDS`."""

    __slots__ = ("counts", "count", "sum")

    def __init__(self) -> None:
        self.counts = [0] * (_NBUCKETS + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bucket_index(seconds)] += 1
        self.count += 1
        self.sum += max(seconds, 0.0)

    def merge(self, other: "LatencyHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` (0..100), log-interpolated inside
        the winning bucket.  0.0 when empty."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile out of range: {q}")
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            seen += c
            if seen >= rank:
                if i >= _NBUCKETS:  # overflow: report the floor
                    return HIST_HI
                lo = HIST_LO if i == 0 else BUCKET_BOUNDS[i - 1]
                hi = BUCKET_BOUNDS[i]
                # position of the requested rank inside this bucket
                frac = (rank - (seen - c)) / c
                return lo * (hi / lo) ** frac
        return HIST_HI  # unreachable; counts sum to self.count

    def percentiles(self, qs: Iterable[float] = (50, 95, 99)) -> dict[str, float]:
        return {f"p{q:g}": self.percentile(q) for q in qs}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _Ring:
    """Per-second slot ring stamped with the owning wall second.

    Shared machinery for the windowed primitives: ``slot(sec)`` returns
    the live slot for a wall second (resetting it if it still holds a
    stale lap), ``live(sec, seconds)`` yields slots covering the last
    ``seconds`` whole seconds ending at ``sec`` inclusive."""

    __slots__ = ("horizon", "stamps", "slots")

    def __init__(self, horizon: int, make: Callable[[], Any]) -> None:
        self.horizon = horizon
        self.stamps = [-1] * horizon
        self.slots = [make() for _ in range(horizon)]

    def slot(self, sec: int, reset: Callable[[Any], Any]) -> Any:
        i = sec % self.horizon
        if self.stamps[i] != sec:
            self.stamps[i] = sec
            self.slots[i] = reset(self.slots[i])
        return self.slots[i]

    def live(self, sec: int, seconds: float) -> Iterable[Any]:
        span = max(1, min(int(math.ceil(seconds)), self.horizon - 1))
        lo = sec - span + 1
        for i, stamp in enumerate(self.stamps):
            if lo <= stamp <= sec:
                yield self.slots[i]


class WindowedCounter:
    """Monotonic counter with per-second rolling windows."""

    __slots__ = ("total", "_ring")

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        self.total = 0.0
        self._ring = _Ring(horizon, lambda: 0.0)

    def add(self, value: float, now: float) -> None:
        self.total += value
        sec = int(now)
        i = sec % self._ring.horizon
        if self._ring.stamps[i] != sec:
            self._ring.stamps[i] = sec
            self._ring.slots[i] = 0.0
        self._ring.slots[i] += value

    def window_sum(self, seconds: float, now: float) -> float:
        return sum(self._ring.live(int(now), seconds))

    def rate(self, seconds: float, now: float) -> float:
        """Events per second over the trailing window."""
        span = max(1.0, min(float(seconds), self._ring.horizon - 1))
        return self.window_sum(seconds, now) / span


class WindowedGauge:
    """Last-value gauge that also keeps a per-second maximum ring."""

    __slots__ = ("last", "peak", "_ring")

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        self.last = 0.0
        self.peak = 0.0
        self._ring = _Ring(horizon, lambda: 0.0)

    def set(self, value: float, now: float) -> None:
        self.last = value
        self.peak = max(self.peak, value)
        sec = int(now)
        i = sec % self._ring.horizon
        if self._ring.stamps[i] != sec:
            self._ring.stamps[i] = sec
            self._ring.slots[i] = value
        else:
            self._ring.slots[i] = max(self._ring.slots[i], value)

    def window_max(self, seconds: float, now: float) -> float:
        return max(self._ring.live(int(now), seconds), default=0.0)


class WindowedHistogram:
    """Cumulative histogram plus per-second histogram ring."""

    __slots__ = ("cumulative", "_ring")

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        self.cumulative = LatencyHistogram()
        self._ring = _Ring(horizon, LatencyHistogram)

    def observe(self, seconds: float, now: float) -> None:
        self.cumulative.observe(seconds)
        self._ring.slot(int(now), lambda _old: LatencyHistogram()).observe(seconds)

    def window(self, seconds: float, now: float) -> LatencyHistogram:
        merged = LatencyHistogram()
        for h in self._ring.live(int(now), seconds):
            merged.merge(h)
        return merged


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _prom_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + body + "}"


class MetricsRegistry:
    """Thread-safe collection of windowed counters, gauges, histograms.

    All metric families live in one registry keyed by
    ``(name, sorted label items)``; one lock serializes every
    operation, which is cheap because each operation is O(1) or
    O(buckets).  ``clock`` defaults to :func:`time.monotonic` and is
    injectable so tests can step time by hand."""

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        horizon: int = DEFAULT_HORIZON,
    ) -> None:
        if horizon < 2:
            raise ValueError(f"horizon must be >= 2, got {horizon}")
        self._clock = clock
        self._horizon = horizon
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple], WindowedCounter] = {}
        self._gauges: dict[tuple[str, tuple], WindowedGauge] = {}
        self._hists: dict[tuple[str, tuple], WindowedHistogram] = {}

    # -- write side --------------------------------------------------------

    def inc(
        self, name: str, value: float = 1.0, labels: dict[str, str] | None = None
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = WindowedCounter(self._horizon)
            c.add(value, self._clock())

    def set_gauge(
        self, name: str, value: float, labels: dict[str, str] | None = None
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = WindowedGauge(self._horizon)
            g.set(value, self._clock())

    def observe(
        self, name: str, seconds: float, labels: dict[str, str] | None = None
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            h = self._hists.get(key)
            if h is None:
                h = self._hists[key] = WindowedHistogram(self._horizon)
            h.observe(seconds, self._clock())

    # -- read side ---------------------------------------------------------

    def counter_total(
        self, name: str, labels: dict[str, str] | None = None
    ) -> float:
        with self._lock:
            c = self._counters.get((name, _label_key(labels)))
            return c.total if c else 0.0

    def rate(
        self, name: str, seconds: float, labels: dict[str, str] | None = None
    ) -> float:
        with self._lock:
            c = self._counters.get((name, _label_key(labels)))
            return c.rate(seconds, self._clock()) if c else 0.0

    def gauge_value(
        self, name: str, labels: dict[str, str] | None = None
    ) -> float:
        with self._lock:
            g = self._gauges.get((name, _label_key(labels)))
            return g.last if g else 0.0

    def gauge_peak(self, name: str, labels: dict[str, str] | None = None) -> float:
        with self._lock:
            g = self._gauges.get((name, _label_key(labels)))
            return g.peak if g else 0.0

    def gauge_window_max(
        self, name: str, seconds: float, labels: dict[str, str] | None = None
    ) -> float:
        with self._lock:
            g = self._gauges.get((name, _label_key(labels)))
            return g.window_max(seconds, self._clock()) if g else 0.0

    def percentiles(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        qs: Iterable[float] = (50, 95, 99),
        window: float | None = None,
    ) -> dict[str, float]:
        """Percentiles for a histogram family member.

        ``window=None`` reads the cumulative histogram; a number reads
        the merged trailing window of that many seconds.  Unknown
        families return all-zero percentiles (a server that has not
        seen a request kind yet is not an error)."""
        with self._lock:
            h = self._hists.get((name, _label_key(labels)))
            if h is None:
                hist = LatencyHistogram()
            elif window is None:
                hist = h.cumulative
            else:
                hist = h.window(window, self._clock())
        return hist.percentiles(qs)

    def merged_percentiles(
        self,
        name: str,
        qs: Iterable[float] = (50, 95, 99),
        window: float | None = None,
    ) -> dict[str, float]:
        """Percentiles over every label set of one histogram family
        merged together (e.g. request latency across all kinds)."""
        merged = LatencyHistogram()
        with self._lock:
            now = self._clock()
            for (n, _key), h in self._hists.items():
                if n != name:
                    continue
                merged.merge(
                    h.cumulative if window is None else h.window(window, now)
                )
        return merged.percentiles(qs)

    def histogram_labels(self, name: str) -> list[dict[str, str]]:
        """Label sets observed so far for one histogram family."""
        with self._lock:
            return [dict(k[1]) for k in self._hists if k[0] == name]

    # -- snapshots ---------------------------------------------------------

    def snapshot(
        self, windows: Iterable[float] = DEFAULT_WINDOWS
    ) -> dict[str, Any]:
        """Point-in-time view of every family: totals, last/peak
        gauges, cumulative percentiles, and per-window rates, maxima,
        and percentiles.  Cost is O(families x windows x buckets) —
        independent of request count."""
        windows = tuple(windows)
        now = self._clock()
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for (name, key), c in sorted(self._counters.items()):
                out["counters"][name + _prom_labels(key)] = {
                    "total": c.total,
                    "rates": {
                        f"{w:g}s": c.rate(w, now) for w in windows
                    },
                }
            for (name, key), g in sorted(self._gauges.items()):
                out["gauges"][name + _prom_labels(key)] = {
                    "last": g.last,
                    "peak": g.peak,
                    "window_max": {
                        f"{w:g}s": g.window_max(w, now) for w in windows
                    },
                }
            for (name, key), h in sorted(self._hists.items()):
                entry: dict[str, Any] = {
                    "count": h.cumulative.count,
                    "mean": h.cumulative.mean,
                    "overall": h.cumulative.percentiles(),
                }
                for w in windows:
                    win = h.window(w, now)
                    entry[f"{w:g}s"] = {
                        "count": win.count,
                        **win.percentiles(),
                    }
                out["histograms"][name + _prom_labels(key)] = entry
        return out

    def render_prometheus(self, namespace: str = "repro_serve") -> str:
        """Prometheus text exposition (version 0.0.4) of the registry.

        Counters render as ``_total``, gauges as-is, histograms as the
        standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
        triple over the shared log-spaced bounds."""
        lines: list[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            hists = sorted(self._hists.items())
            seen: set[str] = set()
            for (name, key), c in counters:
                full = f"{namespace}_{name}_total"
                if full not in seen:
                    seen.add(full)
                    lines.append(f"# TYPE {full} counter")
                lines.append(f"{full}{_prom_labels(key)} {c.total:g}")
            for (name, key), g in gauges:
                full = f"{namespace}_{name}"
                if full not in seen:
                    seen.add(full)
                    lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full}{_prom_labels(key)} {g.last:g}")
            for (name, key), h in hists:
                full = f"{namespace}_{name}_seconds"
                if full not in seen:
                    seen.add(full)
                    lines.append(f"# TYPE {full} histogram")
                cum = 0
                for i, bound in enumerate(BUCKET_BOUNDS):
                    cum += h.cumulative.counts[i]
                    labels = _prom_labels(key + (("le", f"{bound:.6g}"),))
                    lines.append(f"{full}_bucket{labels} {cum}")
                labels = _prom_labels(key + (("le", "+Inf"),))
                lines.append(f"{full}_bucket{labels} {h.cumulative.count}")
                lines.append(
                    f"{full}_sum{_prom_labels(key)} {h.cumulative.sum:.9g}"
                )
                lines.append(f"{full}_count{_prom_labels(key)} {h.cumulative.count}")
        return "\n".join(lines) + "\n"
