"""Serving vs one-shot: request throughput and latency under a burst.

The one-shot path pays the full compiler stack (parse → typecheck →
analysis → decomposition → codegen) plus engine construction *per
request*.  The serving path (:mod:`repro.serve`) pays it once per
distinct compilation context: the plan cache absorbs repeat compiles,
the warm :class:`EngineSession` absorbs engine setup, and micro-batching
coalesces identical in-flight requests into single executions.

This benchmark pushes the same deterministic mixed burst (knn query
points + vmscope region presets, few distinct bodies so coalescing has
something to do) through both paths, verifies every served response is
byte-identical to its one-shot baseline, and asserts the throughput
ratio.  The >=5x floor is enforced on local / EXPERIMENTS.md runs; on CI
(detected via the ``CI`` env var) the assertion drops to an advisory 2x
floor for shared-runner noise.  The JSON report always records the
measured numbers against the 5x target.

A third mode measures the **socket transport**: the identical burst
through a :class:`RemoteClient` over a loopback connection — the serving
wins (plan cache, warm engine, coalescing) must survive framing, value
encoding, and two thread hops per request.  Socket responses are
verified byte-identical to the one-shot baselines too, and the
socket-vs-one-shot ratio carries its own floor (>=4x local, >=2x on CI).

A fifth mode (``--fuse``) measures **request fusion**: a burst of 32
*distinct* knn query points — equal-``group_key`` coalescing gets no
purchase, so the unfused server runs one engine execution per query —
against the same server with fusion on, where the whole burst merges
into one lane-batched execution of the compiled pipeline.  Fused
responses are verified byte-identical to one-shot baselines, and the
fused-vs-coalesced throughput ratio carries its own floor (>=3x local,
>=1.5x advisory on CI).

A fourth mode isolates the **resident process-engine worker pool**:
sequential (unbatched) requests against two otherwise-identical
process-engine servers, one with ``EngineOptions(resident=False)``
(fork-per-run: every request forks, runs, and joins its worker
processes) and one with the default resident pool (workers forked once,
each request shipped as a work epoch over the order channels).  The
per-request latency medians are compared — the resident pool must be
>=2x lower locally (advisory 1.2x on CI) — and both modes land in the
JSON report.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_serve_throughput.py [out.json]``
(writes a JSON report for the CI artifact) or via pytest.  Results are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time

import pytest

from repro.apps import make_knn_service, make_vmscope_service
from repro.datacutter import EngineOptions
from repro.serve import LocalClient, PipelineServer, RemoteClient, ServerOptions
from repro.serve.session import oneshot

EXPECTED_SPEEDUP = 5.0
#: shared CI runners add enough wall-clock noise that the real floor can
#: fail without a regression; CI asserts this advisory floor instead
CI_FLOOR = 2.0
#: loopback-socket serving vs one-shot: framing + two thread hops per
#: request cost some of the LocalClient speedup, but never the multiple
SOCKET_EXPECTED_SPEEDUP = 4.0
SOCKET_CI_FLOOR = 2.0
#: resident worker pool vs fork-per-run on the process engine: median
#: per-request latency must drop by at least this factor
RESIDENT_EXPECTED_SPEEDUP = 2.0
RESIDENT_CI_FLOOR = 1.2
#: fused lane-batched burst vs unfused equal-group_key coalescing on a
#: burst of distinct knn queries
FUSION_EXPECTED_SPEEDUP = 3.0
FUSION_CI_FLOOR = 1.5

N_REQUESTS = 60
#: distinct request bodies in the burst (coalescing + cache-hit fodder)
KNN_POINTS = [(0.2, 0.2, 0.2), (0.7, 0.4, 0.6), (0.5, 0.9, 0.1)]
VM_PRESETS = ("small", "large")


def enforced_floor() -> float:
    return CI_FLOOR if os.environ.get("CI") else EXPECTED_SPEEDUP


def enforced_socket_floor() -> float:
    return SOCKET_CI_FLOOR if os.environ.get("CI") else SOCKET_EXPECTED_SPEEDUP


def enforced_resident_floor() -> float:
    return RESIDENT_CI_FLOOR if os.environ.get("CI") else RESIDENT_EXPECTED_SPEEDUP


def enforced_fusion_floor() -> float:
    return FUSION_CI_FLOOR if os.environ.get("CI") else FUSION_EXPECTED_SPEEDUP


def make_services():
    return [
        make_knn_service(n_points=4_000, num_packets=4),
        make_vmscope_service(image_w=128, image_h=128, tile=32, num_packets=4),
    ]


def mixed_burst(n: int = N_REQUESTS) -> list:
    out = []
    for i in range(n):
        if i % 4 == 3:
            out.append(("vmscope", {"query": VM_PRESETS[(i // 4) % 2]}))
        else:
            x, y, z = KNN_POINTS[i % len(KNN_POINTS)]
            out.append(("knn", {"x": x, "y": y, "z": z}))
    return out


def measure() -> dict:
    services = make_services()
    by_kind = {s.name: s for s in services}
    requests = mixed_burst()

    # -- one-shot path: full compile + fresh engine per request ------------
    t0 = time.perf_counter()
    oneshot_values = [oneshot(by_kind[k].plan(body)) for k, body in requests]
    oneshot_wall = time.perf_counter() - t0

    # -- serving path ------------------------------------------------------
    options = ServerOptions(max_batch=32, batch_deadline=0.01, max_queue=128)
    with PipelineServer(make_services(), options) as server:
        client = LocalClient(server, timeout=600.0)
        t0 = time.perf_counter()
        responses = client.burst(requests)
        serve_wall = time.perf_counter() - t0
        stats = client.stats()

        # -- socket path: same burst, same warm server, over loopback ------
        with RemoteClient(server.listen(), timeout=600.0) as remote:
            t0 = time.perf_counter()
            socket_responses = remote.burst(requests)
            socket_wall = time.perf_counter() - t0
            socket_stats = remote.stats()

    for label, batch in (("served", responses), ("socket", socket_responses)):
        assert all(r.ok for r in batch), [
            (r.status, r.error) for r in batch if not r.ok
        ][:1]
        for response, expect in zip(batch, oneshot_values):
            assert response.value.tobytes() == expect.tobytes(), (
                f"{label} response #{response.id} ({response.kind}) diverged "
                "from its one-shot baseline"
            )

    return {
        "requests": len(requests),
        "distinct_bodies": len({(k, tuple(sorted(b.items()))) for k, b in requests}),
        "oneshot_wall_s": round(oneshot_wall, 4),
        "serve_wall_s": round(serve_wall, 4),
        "oneshot_req_per_s": round(len(requests) / oneshot_wall, 2),
        "serve_req_per_s": round(len(requests) / serve_wall, 2),
        "throughput_speedup": round(oneshot_wall / serve_wall, 2),
        "executions": stats["executions"],
        "plan_cache_hits": stats["plan_cache_hits"],
        "batch_occupancy_mean": stats["batch_occupancy_mean"],
        "shed": stats["shed"],
        "latency_s": stats["latency"],
        "socket_wall_s": round(socket_wall, 4),
        "socket_req_per_s": round(len(requests) / socket_wall, 2),
        "socket_speedup": round(oneshot_wall / socket_wall, 2),
        "socket_frames_in": socket_stats["transport"]["frames_in"],
        "socket_bytes_in": socket_stats["transport"]["bytes_in"],
        "socket_bytes_out": socket_stats["transport"]["bytes_out"],
    }


#: distinct knn query points in the fusion burst — every one a separate
#: coalescing group, so the unfused server cannot merge any of them
N_FUSION_QUERIES = 32


def fusion_burst(n: int = N_FUSION_QUERIES) -> list:
    """``n`` knn requests with pairwise-distinct query points (strided
    residues keep them deterministic without an RNG)."""
    out = []
    for i in range(n):
        out.append(
            (
                "knn",
                {
                    "x": round((i * 37 % n) / n + 0.01, 6),
                    "y": round((i * 17 % n) / n + 0.02, 6),
                    "z": round((i * 29 % n) / n + 0.03, 6),
                },
            )
        )
    return out


#: timed burst repetitions per fusion mode; the fastest repeat is the
#: recorded wall (scheduler/GC hiccups otherwise dominate the ~70 ms
#: fused burst and make the ratio flap around the floor)
N_FUSION_REPEATS = 3


def measure_fusion() -> dict:
    """Fused vs unfused serving of one burst of distinct knn queries.

    Both servers are identical (threaded engine, one warm session, plan
    cache) except ``ServerOptions.fuse``; a warmup burst outside the
    timed window fills the plan cache in both modes, so the comparison is
    executions-per-burst, not compile time.  Each mode's burst is timed
    ``N_FUSION_REPEATS`` times against the warm server and the fastest
    repeat is recorded."""
    requests = fusion_burst()
    knn = make_knn_service(n_points=4_000, num_packets=4)
    baselines = [oneshot(knn.plan(body)) for _, body in requests]

    modes: dict = {"requests": len(requests)}
    for mode, fuse in (("coalesced", False), ("fused", True)):
        options = ServerOptions(
            max_batch=len(requests),
            batch_deadline=0.02,
            max_queue=4 * len(requests),
            fuse=fuse,
            max_fuse_lanes=len(requests),
        )
        server = PipelineServer(
            [make_knn_service(n_points=4_000, num_packets=4)], options
        )
        with server:
            client = LocalClient(server, timeout=600.0)
            warm = client.burst(requests)
            assert all(r.ok for r in warm), [
                (r.status, r.error) for r in warm if not r.ok
            ][:1]
            wall = float("inf")
            for _ in range(N_FUSION_REPEATS):
                t0 = time.perf_counter()
                responses = client.burst(requests)
                wall = min(wall, time.perf_counter() - t0)
            stats = client.stats()
        assert all(r.ok for r in responses), [
            (r.status, r.error) for r in responses if not r.ok
        ][:1]
        for response, expect in zip(responses, baselines):
            assert response.value.tobytes() == expect.tobytes(), (
                f"{mode} response #{response.id} diverged from its "
                "one-shot baseline"
            )
        modes[mode] = {
            "wall_s": round(wall, 4),
            "req_per_s": round(len(requests) / wall, 2),
            "executions": stats["executions"],
            # warmup + N_FUSION_REPEATS timed bursts hit the server
            "executions_per_burst": stats["executions"]
            // (N_FUSION_REPEATS + 1),
            "fused_executions": stats["fusion"]["fused_executions"],
            "mean_lanes_per_fused_execution": stats["fusion"][
                "mean_lanes_per_fused_execution"
            ],
            "fuse_bypass": stats["fusion"]["bypass"],
        }
    modes["fusion_speedup"] = round(
        modes["coalesced"]["wall_s"] / modes["fused"]["wall_s"], 2
    )
    return modes


#: sequential per-request latency sample size for the resident-pool mode
N_LATENCY = 20


def measure_resident_latency() -> dict:
    """Median per-request latency, fork-per-run vs resident worker pool.

    Requests are issued sequentially with ``max_batch=1`` so each one is
    a full engine run — the quantity under test is the per-request warm
    path (fork+exec+join vs work-epoch dispatch), not batching."""
    requests = mixed_burst(N_LATENCY)
    by_kind = {s.name: s for s in make_services()}
    baselines = {}
    for kind, body in requests:
        key = (kind, tuple(sorted(body.items())))
        if key not in baselines:
            baselines[key] = oneshot(by_kind[kind].plan(body))

    modes = {}
    for mode, resident in (("fork_per_run", False), ("resident", None)):
        engine_options = EngineOptions(
            engine="process", timeout=300.0, resident=resident
        )
        options = ServerOptions(
            engine_options=engine_options,
            max_batch=1,
            batch_deadline=0.0,
            max_queue=4 * N_LATENCY,
        )
        with PipelineServer(make_services(), options) as server:
            # warmup outside the timed loop: fills the plan cache in both
            # modes and forks the resident pool in resident mode, so the
            # comparison isolates the steady-state per-request cost
            for kind, body in requests[:2]:
                assert server.request(kind, body, timeout=600.0).ok
            latencies = []
            for kind, body in requests:
                t0 = time.perf_counter()
                response = server.request(kind, body, timeout=600.0)
                latencies.append(time.perf_counter() - t0)
                assert response.ok, (response.status, response.error)
                expect = baselines[(kind, tuple(sorted(body.items())))]
                assert response.value.tobytes() == expect.tobytes(), (
                    f"{mode} response ({kind}) diverged from one-shot baseline"
                )
        latencies.sort()
        modes[mode] = {
            "requests": len(latencies),
            "median_ms": round(statistics.median(latencies) * 1e3, 2),
            "p95_ms": round(latencies[int(0.95 * (len(latencies) - 1))] * 1e3, 2),
            "mean_ms": round(statistics.fmean(latencies) * 1e3, 2),
        }
    modes["median_latency_speedup"] = round(
        modes["fork_per_run"]["median_ms"] / modes["resident"]["median_ms"], 2
    )
    return modes


@pytest.fixture(scope="module")
def measured() -> dict:
    return measure()


@pytest.fixture(scope="module")
def resident_measured() -> dict:
    return measure_resident_latency()


@pytest.fixture(scope="module")
def fusion_measured() -> dict:
    return measure_fusion()


def test_serve_throughput_speedup(measured):
    row = measured
    print(
        f"\nserve {row['serve_req_per_s']:.1f} req/s vs one-shot "
        f"{row['oneshot_req_per_s']:.1f} req/s: {row['throughput_speedup']:.1f}x "
        f"({row['executions']} executions for {row['requests']} requests)"
    )
    assert row["throughput_speedup"] >= enforced_floor(), row


def test_socket_throughput_speedup(measured):
    row = measured
    print(
        f"\nsocket {row['socket_req_per_s']:.1f} req/s vs one-shot "
        f"{row['oneshot_req_per_s']:.1f} req/s: {row['socket_speedup']:.1f}x "
        f"({row['socket_bytes_out']} bytes served over loopback)"
    )
    assert row["socket_speedup"] >= enforced_socket_floor(), row


def test_fusion_throughput_speedup(fusion_measured):
    row = fusion_measured
    print(
        f"\nfused {row['fused']['req_per_s']:.1f} req/s "
        f"({row['fused']['executions_per_burst']} executions/burst) vs "
        f"coalesced {row['coalesced']['req_per_s']:.1f} req/s "
        f"({row['coalesced']['executions_per_burst']} executions/burst) on "
        f"{row['requests']} distinct queries: {row['fusion_speedup']:.1f}x"
    )
    assert row["fusion_speedup"] >= enforced_fusion_floor(), row


def test_resident_pool_latency_speedup(resident_measured):
    row = resident_measured
    print(
        f"\nprocess-engine per-request median: fork-per-run "
        f"{row['fork_per_run']['median_ms']:.1f} ms vs resident "
        f"{row['resident']['median_ms']:.1f} ms: "
        f"{row['median_latency_speedup']:.1f}x"
    )
    assert row["median_latency_speedup"] >= enforced_resident_floor(), row


if __name__ == "__main__":  # pragma: no cover - exercised via CI artifact
    argv = [a for a in sys.argv[1:]]
    fuse_only = "--fuse" in argv
    if fuse_only:
        argv.remove("--fuse")
    out_path = argv[0] if argv else (
        "serve_fusion.json" if fuse_only else "serve_throughput.json"
    )

    fusion_floor = enforced_fusion_floor()
    fusion_row = measure_fusion()
    print(
        f"{'mode':<10} {'wall':>8} {'req/s':>8} {'exec/burst':>11}\n"
        f"{'coalesced':<10} {fusion_row['coalesced']['wall_s']:>7.2f}s "
        f"{fusion_row['coalesced']['req_per_s']:>8.1f} "
        f"{fusion_row['coalesced']['executions_per_burst']:>11}\n"
        f"{'fused':<10} {fusion_row['fused']['wall_s']:>7.2f}s "
        f"{fusion_row['fused']['req_per_s']:>8.1f} "
        f"{fusion_row['fused']['executions_per_burst']:>11}\n"
        f"fusion speedup {fusion_row['fusion_speedup']:.1f}x on "
        f"{fusion_row['requests']} distinct knn queries  "
        f"(mean lanes/fused execution "
        f"{fusion_row['fused']['mean_lanes_per_fused_execution']:.1f})"
    )
    if fuse_only:
        report = {
            "fusion_expected_min_speedup": FUSION_EXPECTED_SPEEDUP,
            "fusion_enforced_floor": fusion_floor,
            "fusion": fusion_row,
        }
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {out_path}")
        if fusion_row["fusion_speedup"] < fusion_floor:
            print(f"FAIL: fusion throughput speedup below {fusion_floor}x")
            sys.exit(1)
        sys.exit(0)

    floor = enforced_floor()
    socket_floor = enforced_socket_floor()
    resident_floor = enforced_resident_floor()
    row = measure()
    resident_row = measure_resident_latency()
    report = {
        "expected_min_speedup": EXPECTED_SPEEDUP,
        "enforced_floor": floor,
        "socket_expected_min_speedup": SOCKET_EXPECTED_SPEEDUP,
        "socket_enforced_floor": socket_floor,
        "resident_expected_min_speedup": RESIDENT_EXPECTED_SPEEDUP,
        "resident_enforced_floor": resident_floor,
        "fusion_expected_min_speedup": FUSION_EXPECTED_SPEEDUP,
        "fusion_enforced_floor": fusion_floor,
        "process_engine_latency": resident_row,
        "fusion": fusion_row,
        **row,
    }
    print(
        f"{'path':<10} {'wall':>8} {'req/s':>8}\n"
        f"{'one-shot':<10} {row['oneshot_wall_s']:>7.2f}s {row['oneshot_req_per_s']:>8.1f}\n"
        f"{'serve':<10} {row['serve_wall_s']:>7.2f}s {row['serve_req_per_s']:>8.1f}\n"
        f"{'socket':<10} {row['socket_wall_s']:>7.2f}s {row['socket_req_per_s']:>8.1f}\n"
        f"speedup {row['throughput_speedup']:.1f}x (socket {row['socket_speedup']:.1f}x)  "
        f"executions {row['executions']}/{row['requests']}  "
        f"occupancy {row['batch_occupancy_mean']:.1f}  "
        f"p50/p95/p99 {row['latency_s']['p50'] * 1e3:.0f}/"
        f"{row['latency_s']['p95'] * 1e3:.0f}/"
        f"{row['latency_s']['p99'] * 1e3:.0f} ms"
    )
    print(
        f"process-engine per-request median (ms): "
        f"fork-per-run {resident_row['fork_per_run']['median_ms']:.1f}  "
        f"resident {resident_row['resident']['median_ms']:.1f}  "
        f"speedup {resident_row['median_latency_speedup']:.1f}x"
    )
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {out_path}")
    if report["throughput_speedup"] < floor:
        print(f"FAIL: throughput speedup below {floor}x")
        sys.exit(1)
    if report["socket_speedup"] < socket_floor:
        print(f"FAIL: socket throughput speedup below {socket_floor}x")
        sys.exit(1)
    if resident_row["median_latency_speedup"] < resident_floor:
        print(f"FAIL: resident-pool latency speedup below {resident_floor}x")
        sys.exit(1)
    if fusion_row["fusion_speedup"] < fusion_floor:
        print(f"FAIL: fusion throughput speedup below {fusion_floor}x")
        sys.exit(1)
