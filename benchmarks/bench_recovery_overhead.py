"""Recovery overhead: fault-free vs injected-crash wall clock.

Measures what one crashed-and-restarted filter copy costs end to end on
each engine: the z-buffer Decomp-Comp pipeline runs once fault-free and
once with a crash injected into the middle compute stage on packet 0,
under a retry budget that heals it.  Outputs must be identical in both
runs — a benchmark that silently dropped or double-counted packets would
be measuring a bug, not overhead.

The threaded engine restarts a copy in-process (backoff + replay is the
whole cost).  The process engine also pays the supervisor's death grace
(sentinel-watch polling interval before the dead worker is noticed) and
a full ``fork`` respawn, so its overhead is dominated by ``death_grace``
— which is why the bench pins it low, and why the table in
EXPERIMENTS.md reports it alongside the backoff.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_recovery_overhead.py``
or via pytest.  Results are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time

import pytest

from repro.__main__ import _canonical_outputs
from repro.apps import make_zbuffer_app
from repro.cost import cluster_config
from repro.datacutter import (
    EngineOptions,
    FaultSpec,
    RetryPolicy,
    Trace,
    run_pipeline,
)
from repro.experiments.harness import _specs_for_version

PROC_TIMEOUT = 300.0
DEATH_GRACE = 0.3
RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, jitter=0.0)


def _specs():
    app = make_zbuffer_app()
    workload = app.make_workload(num_packets=8)
    env = cluster_config(1)
    specs, _ = _specs_for_version(app, workload, "Decomp-Comp", env)
    return specs


def _options(engine: str, **extra) -> EngineOptions:
    if engine == "process":
        extra.setdefault("timeout", PROC_TIMEOUT)
        extra.setdefault("death_grace", DEATH_GRACE)
    return EngineOptions(engine=engine, **extra)


def measure_engine(engine: str) -> dict:
    # compile once and reuse the specs for both runs: generated reduction
    # classes get a fresh registry-anchored name per compilation, so
    # outputs from two separate compiles never pickle identically
    specs = _specs()
    target = specs[len(specs) // 2].name

    t0 = time.perf_counter()
    baseline = run_pipeline(specs, _options(engine))
    base_wall = time.perf_counter() - t0

    trace = Trace()
    t0 = time.perf_counter()
    recovered = run_pipeline(
        specs,
        _options(
            engine,
            trace=trace,
            retry=RETRY,
            faults=[FaultSpec(filter=target, kind="crash", copy=0, packet=0)],
        ),
    )
    rec_wall = time.perf_counter() - t0

    identical = _canonical_outputs(recovered.outputs) == _canonical_outputs(
        baseline.outputs
    )
    return {
        "engine": engine,
        "target": target,
        "base_wall": base_wall,
        "rec_wall": rec_wall,
        "overhead": rec_wall - base_wall,
        "restarts": len(trace.restarts()),
        "identical": identical,
    }


@pytest.mark.parametrize("engine", ["threaded", "process"])
def test_injected_crash_overhead(engine):
    row = measure_engine(engine)
    assert row["identical"], "recovered outputs diverged from fault-free run"
    assert row["restarts"] == 1


def main() -> int:
    print("recovery overhead: one injected crash in the middle compute stage")
    print(f"(zbuffer Decomp-Comp, 8 packets; death_grace={DEATH_GRACE}s, "
          f"backoff_base={RETRY.backoff_base}s)")
    header = (
        f"{'engine':<10} {'fault-free':>11} {'recovered':>10} "
        f"{'overhead':>9} {'restarts':>8}  identical"
    )
    print(header)
    print("-" * len(header))
    ok = True
    for engine in ("threaded", "process"):
        row = measure_engine(engine)
        ok = ok and row["identical"] and row["restarts"] == 1
        print(
            f"{row['engine']:<10} {row['base_wall']:>10.3f}s "
            f"{row['rec_wall']:>9.3f}s {row['overhead']:>+8.3f}s "
            f"{row['restarts']:>8}  {'YES' if row['identical'] else 'NO'}"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
