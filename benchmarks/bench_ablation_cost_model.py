"""Ablation: cost-model accuracy (the paper's §8 'our cost models also
need to be evaluated further').

For every plan of the z-buffer chain on a 3-stage pipeline, compares the
§4.3 closed-form estimate against the discrete-event simulator fed the
*same* per-packet times.  The closed form assumes one uniform bottleneck;
the simulator adds queueing/ordering effects.  Estimates must (a) rank
plans almost as the simulator does and (b) stay within a bounded relative
error on the optimum.
"""

from __future__ import annotations

import pytest

from repro.apps import make_zbuffer_app
from repro.core.compiler import CompileOptions, analyze_source, compute_problem
from repro.cost import cluster_config, pipeline_time
from repro.datacutter import simulate_pipeline
from repro.decompose import enumerate_plans


@pytest.fixture(scope="module")
def model_inputs():
    app = make_zbuffer_app()
    workload = app.make_workload(dataset="small", num_packets=16)
    options = CompileOptions(
        env=cluster_config(2),
        profile=workload.profile,
        size_hints=dict(app.size_hints),
        method_costs=dict(app.method_costs),
    )
    checked, chain, comm = analyze_source(app.source, app.registry)
    _tasks, _vols, problem = compute_problem(chain, comm, options)
    return problem


def simulate_plan(problem, plan) -> float:
    times = problem.stage_times(plan)
    env = problem.env
    # drain links carry the final output once per run, not per packet —
    # the same §4.3 refinement the plan evaluator applies
    link_times = []
    drain_total = 0.0
    for j, t in enumerate(times.comm):
        per_stream = t * min(env.units[j].width, env.units[j + 1].width)
        if times.drain[j]:
            drain_total += per_stream
            per_stream = 0.0
        link_times.append(per_stream)
    report = simulate_pipeline(
        comp_times=[t * u.width for t, u in zip(times.comp, env.units)],
        link_times=link_times,
        widths=[u.width for u in env.units],
        num_packets=problem.num_packets,
    )
    return report.makespan + drain_total


def test_ablation_cost_model_vs_simulation(benchmark, model_inputs):
    problem = model_inputs
    plans = list(enumerate_plans(problem.n_filters, problem.m))

    def compare():
        rows = []
        for plan in plans:
            est = pipeline_time(problem.stage_times(plan), problem.num_packets)
            sim = simulate_plan(problem, plan)
            rows.append((est, sim))
        return rows

    rows = benchmark(compare)
    # the simulator can only be slower than the closed form's lower-bound
    # structure by queueing effects; relative error stays bounded
    errors = [abs(est - sim) / max(sim, 1e-12) for est, sim in rows]
    # the worst plans disagree most (drain handling, multi-width rounding);
    # that deviation is itself the ablation's finding — bounded below 1x
    assert max(errors) < 1.0, f"worst relative error {max(errors):.2f}"
    assert sorted(errors)[len(errors) // 2] < 0.2, "median error too large"
    # rank agreement on the best plan
    best_est = min(range(len(rows)), key=lambda i: rows[i][0])
    best_sim = min(range(len(rows)), key=lambda i: rows[i][1])
    est_of_sim_best = rows[best_sim][0]
    est_best = rows[best_est][0]
    assert est_of_sim_best <= est_best * 1.25, (
        "model and simulator disagree badly on the best plan"
    )
    benchmark.extra_info["plans"] = len(rows)
    benchmark.extra_info["max_rel_error"] = round(max(errors), 4)
