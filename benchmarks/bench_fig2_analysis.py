"""Figure 2: the one-pass Gen/Cons + ReqComm analysis (paper §4.2).

The paper stresses the analysis is a *single pass* over the program ("the
efficiency of analysis is important" for JIT settings).  This bench
generates synthetic pipelined programs with a growing number of stages,
benchmarks the complete communication analysis, and asserts that the
statement-visit count grows linearly with program size.
"""

from __future__ import annotations

import pytest

from repro.analysis import GenConsAnalyzer, analyze_communication, build_filter_chain
from repro.lang import check, parse


def synthetic_program(n_stages: int) -> str:
    """A pipelined loop whose foreach body chains n per-element calls."""
    natives = "\n".join(
        f"native double[] step{i}(double[] v, double scale);"
        for i in range(n_stages)
    )
    body_lines = ["double[] v0 = step0(e.data, s);"]
    for i in range(1, n_stages):
        body_lines.append(f"double[] v{i} = step{i}(v{i - 1}, s);")
    body = "\n                    ".join(body_lines)
    return f"""
{natives}
native Rectdomain<1, Elem> read_elems();
native void display(Acc a);

class Elem {{ double[] data; double key; }}

class Acc implements Reducinterface {{
    double[] total;
    void add(double[] v) {{ return; }}
    void merge(Acc other) {{ return; }}
}}

class Main {{
    void run(double s, double cutoff) {{
        runtime_define int num_packets;
        Rectdomain<1, Elem> elems = read_elems();
        Acc result = new Acc();
        PipelinedLoop (p in elems) {{
            Acc local = new Acc();
            foreach (e in p) {{
                if (e.key < cutoff) {{
                    {body}
                    local.add(v{n_stages - 1});
                }}
            }}
            result.merge(local);
        }}
        display(result);
    }}
}}
"""


def run_analysis(source: str):
    checked = check(parse(source))
    meth, loop = checked.pipelined_loops()[0]
    chain = build_filter_chain(checked, meth, loop)
    analyzer = GenConsAnalyzer(checked)
    analysis = analyze_communication(chain, analyzer)
    return chain, analyzer, analysis


@pytest.mark.parametrize("n_stages", [4, 16, 64])
def test_fig2_one_pass_analysis(benchmark, n_stages):
    source = synthetic_program(n_stages)
    chain, analyzer, analysis = benchmark(run_analysis, source)
    # one atom per stage, plus guard + accumulate stages + packet pre/post
    assert len(chain.atoms) == n_stages + 4
    # single pass: statement visits grow linearly in stage count (each
    # atom analyzed exactly once, each holding ~1 statement)
    visits_per_stage = analyzer.visit_count / n_stages
    assert visits_per_stage < 12, (
        f"{analyzer.visit_count} visits for {n_stages} stages — "
        "the analysis is no longer a single pass"
    )
    benchmark.extra_info["stages"] = n_stages
    benchmark.extra_info["stmt_visits"] = analyzer.visit_count
    # ReqComm chains are non-trivial at every internal boundary
    assert all(len(req) > 0 for req in analysis.reqcomm)
