"""Figure 6: isosurface z-buffer, large dataset (paper §6.3).

Paper series: Decomp 20-25% faster; speedups 1.99 (w2), 3.82 (w4)
"""

from __future__ import annotations

import pytest

from conftest import assert_figure, attach_figure_info
from repro.apps import make_zbuffer_app
from repro.datacutter import run_pipeline
from repro.experiments.figures import figure6
from repro.experiments.harness import _specs_for_version
from repro.cost import cluster_config


@pytest.fixture(scope="module")
def figure():
    return figure6()


@pytest.fixture(scope="module")
def app_and_workload():
    app = make_zbuffer_app()
    return app, app.make_workload(dataset="large", num_packets=24)


def _pipeline_runner(app, workload, version):
    specs, _ = _specs_for_version(app, workload, version, cluster_config(1))
    run_pipeline(specs)  # warm
    return lambda: run_pipeline(specs)


def test_fig6_default_pipeline(benchmark, app_and_workload, quick_rounds):
    app, workload = app_and_workload
    benchmark.pedantic(_pipeline_runner(app, workload, "Default"), **quick_rounds)


def test_fig6_decomp_pipeline(benchmark, app_and_workload, figure, quick_rounds):
    app, workload = app_and_workload
    benchmark.pedantic(_pipeline_runner(app, workload, "Decomp-Comp"), **quick_rounds)
    attach_figure_info(benchmark, figure)
    assert_figure(figure)
