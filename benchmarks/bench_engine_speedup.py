"""Threaded vs process engine on CPU-bound pipelines.

The threaded engine runs every filter copy under one GIL, so widening a
CPU-bound stage buys nothing; the process engine gives each copy its own
interpreter.  This benchmark measures the makespan ratio on

* a synthetic two-stage pure-Python pipeline (the worst case for the GIL
  and the cleanest headroom measurement),
* the z-buffer and kNN Decomp-Comp pipelines with width-2 compute stages.

The >=1.5x speedup assertion only makes sense with real cores to spread
over; it is skipped below four cores (CI containers here expose one).
Run standalone with ``PYTHONPATH=src python benchmarks/bench_engine_speedup.py``
or via pytest.  Results are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.apps import make_knn_app, make_zbuffer_app
from repro.cost import cluster_config
from repro.datacutter import (
    EngineOptions,
    Filter,
    FilterSpec,
    SourceFilter,
    run_pipeline,
)
from repro.experiments.harness import _specs_for_version

MIN_CORES_FOR_ASSERT = 4
EXPECTED_SPEEDUP = 1.5
PROC_TIMEOUT = 300.0


# ---------------------------------------------------------------------------
# Synthetic two-stage CPU-bound pipeline
# ---------------------------------------------------------------------------


class _PacketSource(SourceFilter):
    def generate(self, ctx):
        for k in range(ctx.params.get("n", 8)):
            yield float(k)


class _Burn(Filter):
    """Pure-Python spin: holds the GIL for the whole packet."""

    def process(self, buf, ctx):
        acc = 0
        for i in range(ctx.params.get("iters", 400_000)):
            acc += i * i
        ctx.write(buf.payload + (acc % 2), buf.packet)


class _Count(Filter):
    def init(self, ctx):
        self.n = 0

    def process(self, buf, ctx):
        self.n += 1

    def finalize(self, ctx):
        ctx.write(float(self.n))


def synthetic_specs(num_packets: int = 8, iters: int = 400_000):
    params = {"n": num_packets, "iters": iters}
    return [
        FilterSpec("gen", _PacketSource, params=params),
        FilterSpec("burn1", _Burn, placement=1, width=2, params=params),
        FilterSpec("burn2", _Burn, placement=2, width=2, params=params),
        FilterSpec("count", _Count, placement=3, params=params),
    ]


# ---------------------------------------------------------------------------
# Application pipelines with widened compute stages
# ---------------------------------------------------------------------------


def app_specs(which: str, num_packets: int):
    if which == "zbuffer":
        app = make_zbuffer_app()
        workload = app.make_workload(dataset="small", num_packets=num_packets)
    else:
        app = make_knn_app(k=3)
        workload = app.make_workload(n_points=40_000, num_packets=num_packets)
    env = cluster_config(2)
    _specs, result = _specs_for_version(app, workload, "Decomp-Comp", env)
    # widen every interior (compute) stage to two transparent copies
    n = len(result.pipeline.filters)
    widths = [1] + [2] * max(n - 2, 0)
    widths = widths[:n] or [1]
    if n > 1:
        widths[-1] = 1  # single sink so the final reduction stays one object
    return result.pipeline.specs(workload.packets, workload.params, widths)


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _makespan(make_specs, engine: str, repeats: int = 3) -> float:
    opts = EngineOptions(
        engine=engine, timeout=PROC_TIMEOUT if engine == "process" else None
    )
    run_pipeline(make_specs(), opts)  # warm
    best = float("inf")
    for _ in range(repeats):
        specs = make_specs()  # fresh stateful filter instances per run
        t0 = time.perf_counter()
        run_pipeline(specs, opts)
        best = min(best, time.perf_counter() - t0)
    return best


CASES = {
    "synthetic-2stage": (lambda: synthetic_specs(num_packets=8), 8),
    "zbuffer-decomp-w2": (lambda: app_specs("zbuffer", 8), 8),
    "knn-decomp-w2": (lambda: app_specs("knn", 8), 8),
}


def measure_case(name: str) -> dict:
    make_specs, packets = CASES[name]
    threaded = _makespan(make_specs, "threaded")
    process = _makespan(make_specs, "process")
    return {
        "case": name,
        "packets": packets,
        "threaded_s": threaded,
        "process_s": process,
        "speedup": threaded / process,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", sorted(CASES))
def test_engine_speedup(case):
    row = measure_case(case)
    print(
        f"\n{row['case']}: threaded {row['threaded_s']:.3f}s, "
        f"process {row['process_s']:.3f}s, speedup {row['speedup']:.2f}x "
        f"({os.cpu_count()} cores)"
    )
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_ASSERT:
        pytest.skip(
            f"only {cores} core(s); the >= {EXPECTED_SPEEDUP}x speedup "
            f"assertion needs >= {MIN_CORES_FOR_ASSERT}"
        )
    if case == "synthetic-2stage":
        assert row["speedup"] >= EXPECTED_SPEEDUP, row


def main() -> int:
    cores = os.cpu_count() or 1
    print(f"engine speedup benchmark on {cores} cores")
    print(f"{'case':<24} {'packets':>7} {'threaded':>10} {'process':>10} {'speedup':>8}")
    worst_ok = True
    for name in CASES:
        row = measure_case(name)
        print(
            f"{row['case']:<24} {row['packets']:>7} "
            f"{row['threaded_s']:>9.3f}s {row['process_s']:>9.3f}s "
            f"{row['speedup']:>7.2f}x"
        )
        if cores >= MIN_CORES_FOR_ASSERT and name == "synthetic-2stage":
            worst_ok = worst_ok and row["speedup"] >= EXPECTED_SPEEDUP
    if cores < MIN_CORES_FOR_ASSERT:
        print(
            f"note: {cores} core(s) < {MIN_CORES_FOR_ASSERT}; speedup "
            "threshold not enforced"
        )
    return 0 if worst_ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
