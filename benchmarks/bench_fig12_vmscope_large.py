"""Figure 12: virtual microscope, large query (paper §6.5).

Paper series: good speedups; Comp 10-50% slower than Manual; Decomp ~40% faster than Default
"""

from __future__ import annotations

import pytest

from conftest import assert_figure, attach_figure_info
from repro.apps import make_vmscope_app
from repro.datacutter import run_pipeline
from repro.experiments.figures import figure12
from repro.experiments.harness import _specs_for_version
from repro.cost import cluster_config


@pytest.fixture(scope="module")
def figure():
    return figure12()


@pytest.fixture(scope="module")
def app_and_workload():
    app = make_vmscope_app()
    return app, app.make_workload(query="large", num_packets=16)


def _pipeline_runner(app, workload, version):
    specs, _ = _specs_for_version(app, workload, version, cluster_config(1))
    run_pipeline(specs)  # warm
    return lambda: run_pipeline(specs)


def test_fig12_default_pipeline(benchmark, app_and_workload, quick_rounds):
    app, workload = app_and_workload
    benchmark.pedantic(_pipeline_runner(app, workload, "Default"), **quick_rounds)


def test_fig12_decomp_pipeline(benchmark, app_and_workload, figure, quick_rounds):
    app, workload = app_and_workload
    benchmark.pedantic(_pipeline_runner(app, workload, "Decomp-Comp"), **quick_rounds)
    attach_figure_info(benchmark, figure)
    assert_figure(figure)


def test_fig12_manual_pipeline(benchmark, app_and_workload, quick_rounds):
    app, workload = app_and_workload
    benchmark.pedantic(_pipeline_runner(app, workload, "Decomp-Manual"), **quick_rounds)
