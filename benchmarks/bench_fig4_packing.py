"""Figure 4: instance-wise vs field-wise packet packing (paper §5).

The paper's packing rule: fields first consumed by the receiving filter
pack instance-wise (interleaved records, one sweep to unpack them all);
fields consumed by later filters pack field-wise (contiguous regions that
can be forwarded without reshuffling).  This bench measures pack+unpack
for both layouts and the mixed layout the compiler emits, and verifies
bit-exact round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.buffers import BatchBuilder, pack, unpack
from repro.codegen.layout import ColumnSpec, PacketLayout

N_RECORDS = 4096
RNG = np.random.default_rng(99)


def make_layout(groups: list[str]) -> PacketLayout:
    layout = PacketLayout()
    for i, group in enumerate(groups):
        layout.columns.append(
            ColumnSpec(
                name=f"f{i}",
                source=f"rec.f{i}",
                dtype=np.dtype(np.float64),
                group=group,
                first_consumer=i,
            )
        )
    return layout


def make_batch(layout: PacketLayout):
    builder = BatchBuilder(layout, packet=0)
    data = {c.name: RNG.uniform(0, 1, N_RECORDS) for c in layout.columns}
    for r in range(N_RECORDS):
        builder.append(**{name: col[r] for name, col in data.items()})
    return builder.build()


def roundtrip(batch, layout):
    return unpack(pack(batch, layout), layout)


@pytest.mark.parametrize(
    "label,groups",
    [
        ("instance_wise", ["instance"] * 4),
        ("field_wise", ["fieldwise"] * 4),
        ("mixed_sec5_rule", ["instance", "instance", "fieldwise", "fieldwise"]),
    ],
)
def test_fig4_packing(benchmark, label, groups):
    layout = make_layout(groups)
    batch = make_batch(layout)
    out = benchmark(roundtrip, batch, layout)
    for col in layout.columns:
        assert np.array_equal(out.columns[col.source], batch.columns[col.source])
    benchmark.extra_info["layout"] = label
    benchmark.extra_info["records"] = N_RECORDS
    benchmark.extra_info["bytes"] = len(pack(batch, layout))


def test_fig4_ragged_fieldwise(benchmark):
    """Variable-length values (triangle lists) force field-wise packing
    with an offsets table — the generalized §5 arrangement."""
    layout = PacketLayout()
    layout.columns.append(
        ColumnSpec(
            name="tris",
            source="tris",
            dtype=np.dtype(np.float64),
            ragged=True,
            group="fieldwise",
        )
    )
    builder = BatchBuilder(layout, packet=0)
    rows = [RNG.uniform(0, 1, RNG.integers(0, 30)) for _ in range(N_RECORDS)]
    for row in rows:
        builder.append(tris=row)
    batch = builder.build()
    out = benchmark(roundtrip, batch, layout)
    for r in (0, 17, N_RECORDS - 1):
        assert np.array_equal(out.ragged_row("tris", r), rows[r])
