"""Ablation: packet-count sweep (the paper's §8 'automatically choosing
the packet size is another issue' future work).

Sweeps the number of packets for the knn workload under the §4.3 model:
too few packets starve the pipeline (the (N-1)·bottleneck term cannot
amortize the fill), too many pay per-packet overheads (latency per
buffer).  The sweep must show the fill-amortization effect: the estimated
time per element decreases from N=1 to moderate N.
"""

from __future__ import annotations


from repro.apps import make_knn_app
from repro.core.compiler import CompileOptions, analyze_source, compute_problem, decompose
from repro.cost import cluster_config


def estimate_for_packets(num_packets: int) -> float:
    app = make_knn_app(k=3)
    workload = app.make_workload(n_points=60_000, num_packets=num_packets)
    options = CompileOptions(
        env=cluster_config(2),
        profile=workload.profile,
        size_hints=dict(app.size_hints),
        method_costs=dict(app.method_costs),
    )
    checked, chain, comm = analyze_source(app.source, app.registry)
    _tasks, _vols, problem = compute_problem(chain, comm, options)
    plan, _cost = decompose(problem, options)
    return problem.evaluate(plan)


def test_ablation_packet_size_sweep(benchmark):
    counts = [1, 2, 4, 8, 16, 32, 64]

    def sweep():
        return {n: estimate_for_packets(n) for n in counts}

    times = benchmark(sweep)
    # pipelining needs packets: one packet cannot overlap stages
    assert times[16] < times[1], f"no pipelining benefit: {times}"
    # and the benefit saturates rather than growing without bound
    assert times[64] > 0.5 * times[16]
    for n, t in times.items():
        benchmark.extra_info[f"packets_{n}"] = round(t, 6)
