"""Figure 3: the dynamic-programming decomposition (paper §4.4).

The paper's claims: the DP is O(nm) time (vs the C(n+m-1, m-1) brute
force), O(m) space in its streaming form, and exact.  We benchmark all
three implementations on matched instances and assert optimality and the
scaling separation.
"""

from __future__ import annotations

import random

import pytest

from repro.cost import make_pipeline
from repro.decompose import (
    DecompositionProblem,
    brute_force,
    decompose_dp,
    decompose_dp_low_space,
    plan_count,
)


def make_instance(n_filters: int, m: int, seed: int = 0) -> DecompositionProblem:
    rng = random.Random(seed)
    return DecompositionProblem(
        tasks=[rng.uniform(10, 1000) for _ in range(n_filters)],
        vols=[rng.uniform(100, 100_000) for _ in range(n_filters + 1)],
        env=make_pipeline(
            [rng.uniform(1e8, 5e8) for _ in range(m)],
            [rng.uniform(1e7, 2e8) for _ in range(m - 1)],
        ),
        num_packets=64,
    )


@pytest.mark.parametrize("n_filters,m", [(8, 3), (32, 5), (128, 5)])
def test_fig3_dp(benchmark, n_filters, m):
    problem = make_instance(n_filters, m, seed=n_filters)
    result = benchmark(decompose_dp, problem)
    assert result.plan is not None
    assert abs(problem.evaluate_fill(result.plan) - result.cost) < 1e-9
    benchmark.extra_info["n_filters"] = n_filters
    benchmark.extra_info["m"] = m
    benchmark.extra_info["plans_brute_force_would_enumerate"] = plan_count(
        n_filters, m
    )


@pytest.mark.parametrize("n_filters,m", [(8, 3), (14, 5)])
def test_fig3_brute_force(benchmark, n_filters, m):
    """The exponential baseline the paper contrasts with; also validates
    the DP's optimality on this instance."""
    problem = make_instance(n_filters, m, seed=n_filters)
    cost, plan = benchmark(brute_force, problem, "fill")
    dp = decompose_dp(problem)
    assert abs(cost - dp.cost) < 1e-9, "DP must match the brute force"
    benchmark.extra_info["plans_enumerated"] = plan_count(n_filters, m)


@pytest.mark.parametrize("n_filters", [128, 1024])
def test_fig3_dp_low_space(benchmark, n_filters):
    """The O(m)-space variant (paper §4.4, closing paragraph)."""
    problem = make_instance(n_filters, 5, seed=n_filters)
    cost = benchmark(decompose_dp_low_space, problem)
    assert abs(cost - decompose_dp(problem).cost) < 1e-9
