"""Shared helpers for the figure benchmarks.

Each ``bench_figNN_*`` module reproduces one evaluation figure of the paper
(see DESIGN.md's experiment index): it builds the figure's workload,
benchmarks one threaded execution of each version's pipeline, and asserts
the figure's shape checks.  ``pytest benchmarks/ --benchmark-only``
regenerates every figure.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import FigureResult


def attach_figure_info(benchmark, figure: FigureResult) -> None:
    """Record the figure's headline numbers in the benchmark JSON."""
    benchmark.extra_info["figure"] = figure.figure
    benchmark.extra_info["paper"] = figure.paper.description
    benchmark.extra_info["improvement"] = round(figure.improvement(), 3)
    benchmark.extra_info["speedup_w2"] = round(figure.speedup("2-2-1"), 3)
    benchmark.extra_info["speedup_w4"] = round(figure.speedup("4-4-1"), 3)
    for config, seconds in figure.results["Decomp-Comp"].times.items():
        benchmark.extra_info[f"decomp_{config}"] = round(seconds, 5)
    for config, seconds in figure.results["Default"].times.items():
        benchmark.extra_info[f"default_{config}"] = round(seconds, 5)


def assert_figure(figure: FigureResult) -> None:
    report = figure.report()
    print()
    print(report)
    assert figure.ok, f"shape checks failed:\n{report}"


@pytest.fixture(scope="session")
def quick_rounds():
    """Rounds for pedantic full-pipeline benchmarks (they are seconds-long
    end-to-end runs; statistical repetition adds little)."""
    return dict(rounds=2, iterations=1, warmup_rounds=0)
