"""Scalar vs vector codegen backend on the application kernel stages.

The vector backend (``repro.codegen.vectorize``) compiles ``foreach``
bodies to columnar NumPy instead of a per-record Python loop.  This
benchmark compiles the z-buffer and kNN Decomp-Comp pipelines under both
backends, runs them traced (width 1, threaded engine — the comparison is
single-core codegen quality, not parallelism), and compares the measured
compute seconds of the *kernel stage*: the pipeline stage where the
scalar backend spends most of its per-packet time.

Unlike the engine-speedup benchmark this assertion does not depend on
core count — replacing an interpreted per-record loop with ufunc batches
wins on one core.  The recorded >=5x floor is enforced on local /
EXPERIMENTS.md runs; on CI (detected via the ``CI`` env var) the
assertion drops to an advisory 2x floor, because wall-clock timings on
contended shared runners are noisy enough to fail the real floor without
any code regression.  The JSON report always records the measured
numbers against the 5x target.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_vectorize_speedup.py [out.json]``
(writes a JSON report for the CI artifact) or via pytest.  Results are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.apps import make_knn_app, make_zbuffer_app
from repro.core.compiler import CompileOptions, compile_source
from repro.cost import cluster_config
from repro.decompose.plan import DecompositionPlan
from repro.experiments.harness import measure_specs, measure_version

EXPECTED_SPEEDUP = 5.0
#: shared CI runners add enough wall-clock noise that the real floor can
#: fail without a regression; CI asserts this advisory floor instead
CI_FLOOR = 2.0
BACKENDS = ("scalar", "vector")


def enforced_floor() -> float:
    return CI_FLOOR if os.environ.get("CI") else EXPECTED_SPEEDUP


def _workload(which: str):
    if which == "zbuffer":
        app = make_zbuffer_app()
        return app, app.make_workload(dataset="small", num_packets=6)
    app = make_knn_app(k=3)
    return app, app.make_workload(n_points=40_000, num_packets=6)


CASES = ("zbuffer", "knn")


def _measure(which: str, app, workload, env, backend: str):
    if which == "zbuffer":
        # the DP plan already splits source and compute across stages
        return measure_version(app, workload, "Decomp-Comp", env, backend=backend)
    # knn: the DP collapses all atoms onto the data host for this cheap
    # workload, which would mix point generation into the kernel stage;
    # split them explicitly so the measurement isolates codegen quality
    options = CompileOptions(
        env=env,
        profile=workload.profile,
        size_hints=dict(app.size_hints),
        runtime_classes=dict(app.runtime_classes),
        method_costs=dict(app.method_costs),
        backend=backend,
    )
    result = compile_source(
        app.source, app.registry, options, plan=DecompositionPlan((1, 2, 2, 2), 2)
    )
    specs = result.pipeline.specs(workload.packets, workload.params)
    return measure_specs(specs, result, workload, env, "Decomp-Comp")


def measure_case(which: str) -> dict:
    app, workload = _workload(which)
    env = cluster_config(2)
    runs = {
        backend: _measure(which, app, workload, env, backend)
        for backend in BACKENDS
    }
    for backend, run in runs.items():
        assert run.correct, f"{which}/{backend} failed its oracle check"
    scalar, vector = runs["scalar"], runs["vector"]
    # the kernel stage is wherever the scalar backend burns its time
    stages = range(len(scalar.stage_seconds))
    kernel = max(stages, key=scalar.stage_mean)
    return {
        "app": which,
        "num_packets": workload.num_packets,
        "kernel_stage": kernel,
        "scalar_stage_s": scalar.stage_mean(kernel),
        "vector_stage_s": vector.stage_mean(kernel),
        "kernel_speedup": scalar.stage_mean(kernel) / vector.stage_mean(kernel),
        "scalar_packet_s": scalar.measured_packet_seconds(),
        "vector_packet_s": vector.measured_packet_seconds(),
        "end_to_end_speedup": (
            scalar.measured_packet_seconds() / vector.measured_packet_seconds()
        ),
    }


@pytest.mark.parametrize("which", CASES)
def test_kernel_stage_speedup(which):
    row = measure_case(which)
    print(
        f"\n{row['app']}: kernel stage {row['kernel_stage']} "
        f"scalar {row['scalar_stage_s'] * 1e3:.1f}ms/pkt, "
        f"vector {row['vector_stage_s'] * 1e3:.1f}ms/pkt, "
        f"speedup {row['kernel_speedup']:.1f}x"
    )
    assert row["kernel_speedup"] >= enforced_floor(), row


def main(out_path: str = "vectorize_speedup.json") -> int:
    floor = enforced_floor()
    rows = []
    print(
        f"{'app':<10} {'stage':>5} {'scalar/pkt':>11} {'vector/pkt':>11} "
        f"{'kernel':>8} {'end2end':>8}"
    )
    ok = True
    for which in CASES:
        row = measure_case(which)
        rows.append(row)
        print(
            f"{row['app']:<10} {row['kernel_stage']:>5} "
            f"{row['scalar_stage_s'] * 1e3:>9.1f}ms {row['vector_stage_s'] * 1e3:>9.1f}ms "
            f"{row['kernel_speedup']:>7.1f}x {row['end_to_end_speedup']:>7.1f}x"
        )
        ok = ok and row["kernel_speedup"] >= floor
    report = {
        "expected_min_speedup": EXPECTED_SPEEDUP,
        "enforced_floor": floor,
        "cases": rows,
    }
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {out_path}")
    if not ok:
        print(f"FAIL: a kernel stage fell below {floor}x")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
