"""Ablation: how much does the DP decomposition buy? (DESIGN.md index)

Compares, under the §4.3 cost model for the z-buffer application, the DP
plan against the Default placement, the everything-at-source placement,
and random plans — the DP plan must be at least as good as all of them
(it is exact), and strictly better than Default here.
"""

from __future__ import annotations

import random

import pytest

from repro.apps import make_zbuffer_app
from repro.core.compiler import (
    CompileOptions,
    analyze_source,
    compute_problem,
    decompose,
    default_plan,
    source_only_plan,
)
from repro.cost import cluster_config
from repro.decompose import enumerate_plans


@pytest.fixture(scope="module")
def problem_and_plans():
    app = make_zbuffer_app()
    workload = app.make_workload(dataset="small", num_packets=16)
    options = CompileOptions(
        env=cluster_config(2),
        profile=workload.profile,
        size_hints=dict(app.size_hints),
        method_costs=dict(app.method_costs),
    )
    checked, chain, comm = analyze_source(app.source, app.registry)
    tasks, vols, problem = compute_problem(chain, comm, options)
    plan, cost = decompose(problem, options)
    return chain, problem, plan, cost


def test_ablation_dp_beats_heuristics(benchmark, problem_and_plans):
    chain, problem, plan, cost = problem_and_plans

    def evaluate_all():
        dp_time = problem.evaluate(plan)
        default_time = problem.evaluate(default_plan(chain, problem.m))
        source_time = problem.evaluate(source_only_plan(chain, problem.m))
        rng = random.Random(5)
        all_plans = list(enumerate_plans(problem.n_filters, problem.m))
        random_times = [
            problem.evaluate(rng.choice(all_plans)) for _ in range(32)
        ]
        return dp_time, default_time, source_time, random_times

    dp_time, default_time, source_time, random_times = benchmark(evaluate_all)
    assert dp_time <= default_time + 1e-12
    assert dp_time <= source_time + 1e-12
    assert all(dp_time <= t + 1e-12 for t in random_times)
    assert dp_time < default_time, "DP should strictly beat Default here"
    benchmark.extra_info["dp_over_default"] = round(default_time / dp_time, 3)
    benchmark.extra_info["dp_over_source_only"] = round(source_time / dp_time, 3)
