"""Figure 8: isosurface active pixels, large dataset (paper §6.3).

Paper series: Decomp 15-25% faster; near-linear width speedups
"""

from __future__ import annotations

import pytest

from conftest import assert_figure, attach_figure_info
from repro.apps import make_active_pixels_app
from repro.datacutter import run_pipeline
from repro.experiments.figures import figure8
from repro.experiments.harness import _specs_for_version
from repro.cost import cluster_config


@pytest.fixture(scope="module")
def figure():
    return figure8()


@pytest.fixture(scope="module")
def app_and_workload():
    app = make_active_pixels_app()
    return app, app.make_workload(dataset="large", num_packets=24)


def _pipeline_runner(app, workload, version):
    specs, _ = _specs_for_version(app, workload, version, cluster_config(1))
    run_pipeline(specs)  # warm
    return lambda: run_pipeline(specs)


def test_fig8_default_pipeline(benchmark, app_and_workload, quick_rounds):
    app, workload = app_and_workload
    benchmark.pedantic(_pipeline_runner(app, workload, "Default"), **quick_rounds)


def test_fig8_decomp_pipeline(benchmark, app_and_workload, figure, quick_rounds):
    app, workload = app_and_workload
    benchmark.pedantic(_pipeline_runner(app, workload, "Decomp-Comp"), **quick_rounds)
    attach_figure_info(benchmark, figure)
    assert_figure(figure)
